package armstrong

import (
	"math/rand"
	"testing"

	"odlib/internal/core"
	"odlib/internal/prover"
)

func L(attrs ...string) core.List { return core.L(attrs...) }

func mustParse(t *testing.T, text string) []core.OD {
	t.Helper()
	ods, err := core.ParseStatements(text)
	if err != nil {
		t.Fatal(err)
	}
	return ods
}

func mustRel(t *testing.T, attrs core.List, rows ...[]int64) *core.Relation {
	t.Helper()
	r := core.MustRelation(attrs)
	for _, row := range rows {
		if err := r.AddIntRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestFigures4to6Append reproduces the paper's append example exactly:
// t1 (Figure 4) appended with t2 (Figure 5) yields Figure 6.
func TestFigures4to6Append(t *testing.T) {
	attrs := L("A", "B", "C", "D")
	t1 := mustRel(t, attrs, []int64{0, 0, 0, 0}, []int64{0, 0, 1, 1})
	t2 := mustRel(t, attrs, []int64{0, 1, 0, 0}, []int64{1, 0, 0, 0})
	got, err := Append(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	want := mustRel(t, attrs,
		[]int64{0, 0, 0, 0},
		[]int64{0, 0, 1, 1},
		[]int64{2, 3, 2, 2},
		[]int64{3, 2, 2, 2},
	)
	if got.Len() != want.Len() {
		t.Fatalf("append produced %d rows, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		for _, a := range attrs {
			g, _ := got.Value(i, a)
			w, _ := want.Value(i, a)
			if !g.Equal(w) {
				t.Fatalf("Figure 6 mismatch at row %d attr %s: got %v want %v\n%s", i, a, g, w, got)
			}
		}
	}
}

func TestAppendErrors(t *testing.T) {
	t1 := mustRel(t, L("A"), []int64{1})
	t2 := mustRel(t, L("B"), []int64{1})
	if _, err := Append(t1, t2); err == nil {
		t.Error("mismatched schemas must fail")
	}
	t3 := core.MustRelation(L("A"))
	if err := t3.AddRow(core.Str("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(t1, t3); err == nil {
		t.Error("non-integer values must fail")
	}
	empty := core.MustRelation(L("A"))
	got, err := Append(t1, empty)
	if err != nil || got.Len() != 1 {
		t.Errorf("append with empty right: %v %v", got, err)
	}
	got, err = Append(empty, t1)
	if err != nil || got.Len() != 1 {
		t.Errorf("append with empty left: %v %v", got, err)
	}
	if _, err := AppendAll(); err == nil {
		t.Error("AppendAll of nothing must fail")
	}
}

// TestAppendLemma9: if two tables satisfy an OD with a non-empty left side,
// their append satisfies it too — appending introduces no splits or swaps
// beyond the trivial [] ↦ Y.
func TestAppendLemma9(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	universe := L("A", "B", "C")
	for i := 0; i < 200; i++ {
		t1 := core.RandRelation(rng, universe, 4, 3)
		t2 := core.RandRelation(rng, universe, 4, 3)
		od := core.RandOD(rng, universe, 2)
		if od.LHS.Empty() {
			od.LHS = L("A")
		}
		ok1, _, err := t1.Satisfies(od)
		if err != nil {
			t.Fatal(err)
		}
		ok2, _, err := t2.Satisfies(od)
		if err != nil {
			t.Fatal(err)
		}
		if !ok1 || !ok2 {
			continue
		}
		app, err := Append(t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		okA, _, err := app.Satisfies(od)
		if err != nil {
			t.Fatal(err)
		}
		if !okA {
			t.Fatalf("Lemma 9 violated for %s:\n%s", od, app)
		}
		// And the trivial exception: [] ↦ [A] is always falsified across
		// blocks when both inputs are non-empty.
		okC, _, err := app.Satisfies(core.ConstantOD("A"))
		if err != nil {
			t.Fatal(err)
		}
		if okC {
			t.Fatal("append of non-empty tables cannot keep a constant")
		}
	}
}

// TestFigure7Split checks the split construction on the FD example A → B:
// the table satisfies M and falsifies exactly the non-implied FD-form ODs.
func TestFigure7Split(t *testing.T) {
	m := mustParse(t, "[A] -> [A, B]")
	universe := L("A", "B", "C")
	split, err := SplitTable(m, universe)
	if err != nil {
		t.Fatal(err)
	}
	ok, v, err := split.SatisfiesAll(m)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("split(M) must satisfy M, violated: %v\n%s", v, split)
	}
	// FD-form completeness: C → A is not implied and must be falsified.
	holds, _, err := split.Satisfies(core.NewOD(L("C"), L("C", "A")))
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Errorf("split(M) fails to falsify the non-implied FD C → A\n%s", split)
	}
	// A → C likewise.
	holds, _, err = split.Satisfies(core.NewOD(L("A"), L("A", "C")))
	if err != nil || holds {
		t.Errorf("split(M) fails to falsify A → C (err=%v)\n%s", err, split)
	}
	// Implied FD-form ODs hold: AC → B.
	holds, _, err = split.Satisfies(core.NewOD(L("A", "C"), L("A", "C", "B")))
	if err != nil || !holds {
		t.Errorf("split(M) must satisfy the implied FD AC → B (err=%v)", err)
	}
	// Splits introduce no swaps: every order-compatibility over the universe
	// holds on split(M).
	for _, x := range universe {
		for _, y := range universe {
			okC, _, err := split.OrderCompatible(core.List{x}, core.List{y})
			if err != nil || !okC {
				t.Errorf("split(M) must not contain swaps: %s ~ %s failed (err=%v)", x, y, err)
			}
		}
	}
}

// TestFigure9EmptyContext drives the empty-context construction directly:
// with M = {A ~ C} over {A, B, C}, the pair (A, B) swaps only in the empty
// context once B's component is separate, and C must ride with A.
func TestFigure9EmptyContext(t *testing.T) {
	m := mustParse(t, "[A] ~ [C]")
	b := NewBuilder(0)
	p := prover.New(m)
	two, err := b.emptyContextSwap(p, L("A", "B", "C"), "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if two.Len() != 2 {
		t.Fatalf("want 2 rows, got %d", two.Len())
	}
	// A ascends, B descends, C ascends with A (same component).
	pat, err := core.PatternOf(two, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pat.Sign("A") == pat.Sign("B") {
		t.Errorf("A and B must swap: %v", pat)
	}
	if pat.Sign("A") != pat.Sign("C") {
		t.Errorf("C must follow A (A ~ C): %v", pat)
	}
	ok, v, err := two.SatisfiesAll(m)
	if err != nil || !ok {
		t.Errorf("empty-context swap must satisfy M: %v %v", v, err)
	}
	// The chain-connected case must be rejected.
	mChain := mustParse(t, "[A] ~ [B]")
	p2 := prover.New(mChain)
	if _, err := b.emptyContextSwap(p2, L("A", "B"), "A", "B"); err == nil {
		t.Error("chain-connected pair must be rejected (Lemma 12)")
	}
}

// TestCanonicalTableSatisfiesM: the canonical table never falsifies M.
func TestCanonicalTableSatisfiesM(t *testing.T) {
	cases := []string{
		"[A] -> [B]",
		"[A] -> [A, B]",
		"[A] ~ [B]",
		"[A] -> [B]; [B] -> [C]",
		"[A, B] -> [C]",
		"[] -> [A]",
		"[A] <-> [B]",
		"[month] -> [quarter]",
	}
	b := NewBuilder(0)
	for _, text := range cases {
		m := mustParse(t, text)
		universe := core.AttrsOf(m).Sorted()
		table, err := b.CanonicalTable(m, universe)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		ok, v, err := table.SatisfiesAll(m)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if !ok {
			t.Errorf("canonical table for %q falsifies M: %v\n%s", text, v, table)
		}
	}
}

// TestCanonicalTableComplete is the executable Theorem 17: over every OD
// with sides of up to two attributes, the canonical table satisfies exactly
// the implied ones.
func TestCanonicalTableComplete(t *testing.T) {
	cases := []string{
		"[A] -> [B]",
		"[A] -> [A, B]",
		"[A] ~ [B]",
		"[A] -> [B]; [B] -> [C]",
		"[] -> [A]",
		"[A] <-> [B]",
		"[A, B] -> [C]",
		"[C] -> [A, B]",
	}
	b := NewBuilder(0)
	for _, text := range cases {
		m := mustParse(t, text)
		universe := core.AttrsOf(m).Sorted()
		table, err := b.CanonicalTable(m, universe)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		ok, bad, err := Complete(table, m, universe, 2)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if !ok {
			implied, _ := prover.New(m).Implies(*bad)
			t.Errorf("canonical table for %q disagrees on %s (implied=%v)\n%s",
				text, bad, implied, table)
		}
	}
}

// TestCanonicalTableCompleteRandom stress-tests Theorem 17 with random
// constraint sets over three attributes.
func TestCanonicalTableCompleteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	universe := L("A", "B", "C")
	b := NewBuilder(0)
	for i := 0; i < 25; i++ {
		var m []core.OD
		for j := 0; j < 1+rng.Intn(2); j++ {
			m = append(m, core.RandOD(rng, universe, 2))
		}
		table, err := b.CanonicalTable(m, universe)
		if err != nil {
			t.Fatalf("%s: %v", core.ODsString(m), err)
		}
		okM, v, err := table.SatisfiesAll(m)
		if err != nil {
			t.Fatal(err)
		}
		if !okM {
			t.Fatalf("canonical table for %s falsifies M: %v\n%s", core.ODsString(m), v, table)
		}
		ok, bad, err := Complete(table, m, universe, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			implied, _ := prover.New(m).Implies(*bad)
			t.Fatalf("canonical table for %s disagrees on %s (implied=%v)\n%s",
				core.ODsString(m), bad, implied, table)
		}
	}
}

// TestEnumerationTableComplete: the enumeration-based Armstrong relation is
// complete by construction; verify it anyway, including against the
// canonical construction.
func TestEnumerationTableComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	universe := L("A", "B", "C")
	for i := 0; i < 25; i++ {
		var m []core.OD
		for j := 0; j < 1+rng.Intn(2); j++ {
			m = append(m, core.RandOD(rng, universe, 2))
		}
		table, err := EnumerationTable(m, universe)
		if err != nil {
			t.Fatal(err)
		}
		ok, bad, err := Complete(table, m, universe, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("enumeration table for %s disagrees on %s\n%s", core.ODsString(m), bad, table)
		}
	}
	// All-constants edge: the table is a single row.
	m := mustParse(t, "[] -> [A]; [] -> [B]")
	table, err := EnumerationTable(m, L("A", "B"))
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 1 {
		t.Errorf("all-constant enumeration table should have one row, got %d", table.Len())
	}
}

// TestFigure8FrozenContext: with M = {[C, A] ~ [C, B]} there is no swap
// between A and B while C ties, but there is one in the context where C is
// free; the canonical table must contain a C-tied block with no A/B swap
// falsification and still falsify [A] ~ [B].
func TestFigure8FrozenContext(t *testing.T) {
	m := mustParse(t, "[C, A] ~ [C, B]")
	universe := L("A", "B", "C")
	b := NewBuilder(0)
	table, err := b.CanonicalTable(m, universe)
	if err != nil {
		t.Fatal(err)
	}
	ok, v, err := table.SatisfiesAll(m)
	if err != nil || !ok {
		t.Fatalf("canonical table falsifies M: %v %v\n%s", v, err, table)
	}
	holds, _, err := table.SatisfiesAll(core.OrderCompat(L("A"), L("B")))
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Errorf("[A] ~ [B] is not implied and must be falsified\n%s", table)
	}
	holds, _, err = table.SatisfiesAll(core.OrderCompat(L("C", "A"), L("C", "B")))
	if err != nil || !holds {
		t.Errorf("[C,A] ~ [C,B] must hold (err=%v)\n%s", err, table)
	}
}

func TestGuards(t *testing.T) {
	if _, err := SplitTable(nil, L("A", "A")); err == nil {
		t.Error("duplicate universe must fail")
	}
	long := make(core.List, DefaultMaxAttrs+1)
	for i := range long {
		long[i] = core.Attribute(rune('A' + i))
	}
	if _, err := SplitTable(nil, long); err == nil {
		t.Error("oversized universe must fail")
	}
	if _, err := SplitTable(mustParse(t, "[A] -> [Z]"), L("A")); err == nil {
		t.Error("OD outside universe must fail")
	}
	if _, err := EnumerationTable(nil, L("A", "A")); err == nil {
		t.Error("duplicate universe must fail for enumeration")
	}
	b := NewBuilder(3)
	if _, err := b.SwapTable(nil, L("A", "B", "C", "D")); err == nil {
		t.Error("oversized universe must fail for swap")
	}
}
