package odlib

// One benchmark per experiment of DESIGN.md's index (E1–E15): every figure
// and evaluation claim of the paper has a bench target that regenerates it.
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"odlib/internal/armstrong"
	"odlib/internal/core"
	"odlib/internal/datetime"
	"odlib/internal/discover"
	"odlib/internal/engine"
	"odlib/internal/inference"
	"odlib/internal/monotone"
	"odlib/internal/plan"
	"odlib/internal/polar"
	"odlib/internal/prover"
	"odlib/internal/rewrite"
	"odlib/internal/warehouse"
)

func mustODs(b *testing.B, text string) []core.OD {
	b.Helper()
	ods, err := core.ParseStatements(text)
	if err != nil {
		b.Fatal(err)
	}
	return ods
}

// E1 — Figure 1: OD and order-compatibility checks on the example relation.
func BenchmarkFigure1ODCheck(b *testing.B) {
	r := core.MustRelation(core.L("A", "B", "C", "D", "E", "F"))
	if err := r.AddIntRow(3, 2, 0, 4, 7, 9); err != nil {
		b.Fatal(err)
	}
	if err := r.AddIntRow(3, 2, 1, 3, 8, 9); err != nil {
		b.Fatal(err)
	}
	good := core.NewOD(core.L("A", "B", "C"), core.L("F", "E", "D"))
	bad := core.NewOD(core.L("A", "B", "C"), core.L("F", "D", "E"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _, _ := r.Satisfies(good); !ok {
			b.Fatal("Figure 1 positive case failed")
		}
		if ok, _, _ := r.Satisfies(bad); ok {
			b.Fatal("Figure 1 negative case failed")
		}
	}
}

// E2 — Figure 2: deriving every date-hierarchy path via the prover.
func BenchmarkFigure2DatePaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := datetime.New()
		paths, err := h.DatePaths()
		if err != nil || len(paths) != len(datetime.Nodes()) {
			b.Fatalf("paths = %d, err = %v", len(paths), err)
		}
	}
}

// E3 — Figure 3: the Chain axiom instance; conclusion implied with the
// chain conditions, refuted without.
func BenchmarkFigure3Chain(b *testing.B) {
	with := mustODs(b, "[X] ~ [W]; [W] ~ [Z]; [X, W] ~ [W, Z]")
	without := mustODs(b, "[X] ~ [W]; [W] ~ [Z]")
	goal := core.OrderCompat(core.L("X"), core.L("Z"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1 := prover.New(with)
		ok, err := p1.ImpliesAll(goal)
		if err != nil || !ok {
			b.Fatal("chain conclusion should be implied")
		}
		p2 := prover.New(without)
		ok, err = p2.ImpliesAll(goal)
		if err != nil || ok {
			b.Fatal("chain conclusion should be refuted without the side conditions")
		}
	}
}

// E4 — Figures 4–6: the append operation.
func BenchmarkAppend(b *testing.B) {
	attrs := core.L("A", "B", "C", "D")
	t1 := core.MustRelation(attrs)
	t2 := core.MustRelation(attrs)
	for i := int64(0); i < 64; i++ {
		if err := t1.AddIntRow(i, i%7, i%5, i%3); err != nil {
			b.Fatal(err)
		}
		if err := t2.AddIntRow(i%3, i, i%7, i%5); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := armstrong.Append(t1, t2); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 — Figure 7: the split (Ullman) construction.
func BenchmarkFigure7Split(b *testing.B) {
	m := mustODs(b, "[A] -> [A, B]; [B] -> [B, C]")
	universe := core.L("A", "B", "C", "D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := armstrong.SplitTable(m, universe); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 — Figure 8: the swap construction with context freezing.
func BenchmarkSwapConstruction(b *testing.B) {
	m := mustODs(b, "[C, A] ~ [C, B]")
	universe := core.L("A", "B", "C")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := armstrong.NewBuilder(0).SwapTable(m, universe); err != nil {
			b.Fatal(err)
		}
	}
}

// E7 — Figure 9: the empty-context swap inside the full canonical table.
func BenchmarkFigure9EmptyContext(b *testing.B) {
	m := mustODs(b, "[A] ~ [C]")
	universe := core.L("A", "B", "C")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := armstrong.NewBuilder(0).CanonicalTable(m, universe); err != nil {
			b.Fatal(err)
		}
	}
}

// E8 — Example 1: the order/group query with and without the OD rewrite.
func benchmarkExample1(b *testing.B, withOD bool) {
	tbl, err := engine.NewTable("sales", core.L("year", "quarter", "month", "amount"))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 30_000; i++ {
		m := 1 + i%12
		if err := tbl.Insert(
			core.Int(int64(2000+i%5)), core.Int(int64((m-1)/3+1)),
			core.Int(int64(m)), core.Int(int64(i%997))); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tbl.BuildIndex("ym", core.L("year", "month")); err != nil {
		b.Fatal(err)
	}
	c := rewrite.NewConstraints(nil, nil)
	if withOD {
		c = rewrite.NewConstraints(nil, mustODs(b, "[month] -> [quarter]"))
	}
	planner := plan.NewPlanner(c)
	q := plan.Query{
		Table:   tbl,
		GroupBy: core.L("year", "quarter", "month"),
		Aggs:    []engine.Agg{{Kind: engine.Sum, Attr: "amount", As: "s"}},
		OrderBy: core.L("year", "quarter", "month"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats engine.Stats
		pl, err := planner.PlanQuery(q, &stats)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := pl.Execute(&stats)
		if err != nil || len(rows) != 60 {
			b.Fatalf("rows = %d, err = %v", len(rows), err)
		}
	}
}

func BenchmarkExample1OrderBySort(b *testing.B)      { benchmarkExample1(b, false) }
func BenchmarkExample1OrderByRewritten(b *testing.B) { benchmarkExample1(b, true) }

// E9 — Example 5: the taxes query with derived monotone ODs.
func BenchmarkExample5Taxes(b *testing.B) {
	income := monotone.Col("income")
	generated := map[core.Attribute]monotone.Expr{
		"bracket": monotone.Step{E: income, Thresholds: []int64{20000, 50000, 100000}, Outputs: []int64{1, 2, 3}, Last: 4},
		"payable": monotone.Div{E: monotone.Scale{E: income, K: 25}, K: 100},
	}
	ods := monotone.DeriveODs(generated)
	tbl, err := engine.NewTable("taxes", core.L("income", "bracket", "payable"))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		inc := core.Int(int64((i * 7919) % 250000))
		row := map[core.Attribute]core.Value{"income": inc}
		br, _ := generated["bracket"].Eval(row)
		pay, _ := generated["payable"].Eval(row)
		if err := tbl.Insert(inc, br, pay); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tbl.BuildIndex("income", core.L("income")); err != nil {
		b.Fatal(err)
	}
	planner := plan.NewPlanner(rewrite.NewConstraints(nil, ods))
	q := plan.Query{Table: tbl, OrderBy: core.L("bracket", "payable")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats engine.Stats
		pl, err := planner.PlanQuery(q, &stats)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pl.Execute(&stats); err != nil {
			b.Fatal(err)
		}
		if stats.Sorts != 0 {
			b.Fatal("rewritten taxes plan must not sort")
		}
	}
}

// E10/E11 — the TPC-DS-style suites: per-iteration full run at bench scale.
func benchmarkSuite(b *testing.B, extension bool) {
	cfg := warehouse.DefaultConfig()
	cfg.FactRows = 30_000
	w, err := warehouse.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	queries := w.Queries13()
	if extension {
		queries = w.Queries18()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := warehouse.RunSuite(w, queries)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range ms {
			if !m.Match {
				b.Fatalf("%s: plans disagree", m.Name)
			}
		}
	}
}

func BenchmarkTPCDSDateRewrite13(b *testing.B) { benchmarkSuite(b, false) }
func BenchmarkTPCDSDateRewrite18(b *testing.B) { benchmarkSuite(b, true) }

// E12 — proof generation and verification for the derived theorems.
func BenchmarkProofPartition(b *testing.B) {
	w := core.L("W")
	asm := []core.OD{
		core.NewOD(w, core.L("A", "B", "C")),
		core.NewOD(w, core.L("C", "A", "B")),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := inference.ProveTheorem(asm, func(bld *inference.Builder) int {
			f, _ := bld.Partition(bld.Assume(asm[0]), bld.Assume(asm[1]))
			return f
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProofPermutation covers Theorem 14's heavier derivation.
func BenchmarkProofPermutation(b *testing.B) {
	x := core.L("A", "B")
	y := core.L("C", "D")
	asm := []core.OD{core.NewOD(x, x.Concat(y))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := inference.ProveTheorem(asm, func(bld *inference.Builder) int {
			return bld.PermutationFD(bld.Assume(asm[0]), core.L("B", "A"), core.L("D", "C"))
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// E13 — completeness constructions: canonical vs enumeration tables.
func BenchmarkArmstrongCanonical(b *testing.B) {
	m := mustODs(b, "[A] -> [B]; [B] -> [C]")
	universe := core.L("A", "B", "C", "D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := armstrong.NewBuilder(0).CanonicalTable(m, universe); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArmstrongEnumeration(b *testing.B) {
	m := mustODs(b, "[A] -> [B]; [B] -> [C]")
	universe := core.L("A", "B", "C", "D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := armstrong.EnumerationTable(m, universe); err != nil {
			b.Fatal(err)
		}
	}
}

// E14 — prover scaling in the number of mentioned attributes.
func BenchmarkProverImplication(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("attrs=%d", n), func(b *testing.B) {
			attr := func(i int) core.Attribute { return core.Attribute(fmt.Sprintf("A%d", i)) }
			var m []core.OD
			for i := 0; i+1 < n; i++ {
				m = append(m, core.NewOD(core.List{attr(i)}, core.List{attr(i + 1)}))
			}
			refuted := core.NewOD(core.List{attr(n - 1)}, core.List{attr(0)})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := prover.New(m) // fresh prover: no cache effects
				ok, err := p.Implies(refuted)
				if err != nil || ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// E15 — discovery from data.
func BenchmarkDiscover(b *testing.B) {
	cal, err := datetime.Calendar(2000, 366)
	if err != nil {
		b.Fatal(err)
	}
	sub, err := cal.Project(core.L("date", "year", "quarter", "month"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := discover.Discover(sub, discover.Options{MaxLHS: 1, MaxRHS: 2})
		if err != nil || len(res.ODs) == 0 {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// E17 — polarized implication (the [19] extension).
func BenchmarkPolarProver(b *testing.B) {
	m := []polar.OD{
		{LHS: polar.L("A"), RHS: polar.L("-B")},
		{LHS: polar.L("-B"), RHS: polar.L("C")},
	}
	q := polar.OD{LHS: polar.L("A"), RHS: polar.L("C")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := polar.NewProver(m)
		ok, err := p.Implies(q)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// E18 — FD-closure proof synthesis (constructive Theorem 16).
func BenchmarkFDImplicationProof(b *testing.B) {
	asm := []core.OD{
		core.NewOD(core.L("A"), core.L("A", "B")),
		core.NewOD(core.L("B"), core.L("B", "C")),
		core.NewOD(core.L("C"), core.L("C", "D")),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := inference.ProveTheorem(asm, func(bld *inference.Builder) int {
			steps := make([]int, len(asm))
			for k, od := range asm {
				steps[k] = bld.Assume(od)
			}
			return bld.FDImplication(steps, core.L("A"), core.L("D"))
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: FD-only ReduceOrder vs the OD-augmented ReduceOrder⁺.
func BenchmarkReduceOrderFDOnly(b *testing.B) {
	c := rewrite.NewConstraints(nil, mustODs(b, "[month] -> [quarter]; [day] -> [x]"))
	order := core.L("year", "quarter", "month", "x", "day")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewrite.ReduceOrderFD(order, c)
	}
}

func BenchmarkReduceOrderPlus(b *testing.B) {
	c := rewrite.NewConstraints(nil, mustODs(b, "[month] -> [quarter]; [day] -> [x]"))
	order := core.L("year", "quarter", "month", "x", "day")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.ReduceOrder(order, c); err != nil {
			b.Fatal(err)
		}
	}
}
