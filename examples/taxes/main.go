// Taxes: the paper's Example 5. Tax brackets and tax payable are monotone
// in income, so the derived ODs [income] ↦ [bracket] and
// [income] ↦ [payable] let an index on income serve
// ORDER BY bracket, payable with no sort operator.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"odlib/internal/core"
	"odlib/internal/engine"
	"odlib/internal/monotone"
	"odlib/internal/plan"
	"odlib/internal/rewrite"
)

func main() {
	// The generated columns of the Taxes table, as algebraic expressions:
	// bracket is a CASE over income, payable a scaled income.
	income := monotone.Col("income")
	generated := map[core.Attribute]monotone.Expr{
		"bracket": monotone.Step{
			E:          income,
			Thresholds: []int64{20_000, 50_000, 100_000},
			Outputs:    []int64{1, 2, 3},
			Last:       4,
		},
		"payable": monotone.Div{E: monotone.Scale{E: income, K: 25}, K: 100},
	}

	// Monotonicity analysis derives the ODs automatically ([12]-style).
	ods := monotone.DeriveODs(generated)
	fmt.Printf("derived order dependencies: %s\n", core.ODsString(ods))

	// Build the Taxes table with the generated columns materialized.
	tbl, err := engine.NewTable("taxes", core.L("income", "bracket", "payable"))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10_000; i++ {
		inc := core.Int(int64(rng.Intn(250_000)))
		row := map[core.Attribute]core.Value{"income": inc}
		bracket, err := generated["bracket"].Eval(row)
		if err != nil {
			log.Fatal(err)
		}
		payable, err := generated["payable"].Eval(row)
		if err != nil {
			log.Fatal(err)
		}
		if err := tbl.Insert(inc, bracket, payable); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := tbl.BuildIndex("income_idx", core.L("income")); err != nil {
		log.Fatal(err)
	}

	// The query of Example 5: ORDER BY bracket, payable.
	query := plan.Query{Table: tbl, OrderBy: core.L("bracket", "payable")}

	for _, mode := range []struct {
		name string
		c    *rewrite.Constraints
	}{
		{"without ODs", rewrite.NewConstraints(nil, nil)},
		{"with derived ODs", rewrite.NewConstraints(nil, ods)},
	} {
		var stats engine.Stats
		p := plan.NewPlanner(mode.c)
		pl, err := p.PlanQuery(query, &stats)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := pl.Execute(&stats)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d rows, %d sorts, cost %d\n", mode.name, len(rows), stats.Sorts, stats.Cost())
		fmt.Println(pl.Explain())
	}
	fmt.Println("\nthe income index covers ORDER BY bracket, payable because")
	fmt.Println("[income] -> [bracket, payable] follows by the Union theorem (Theorem 2).")
}
