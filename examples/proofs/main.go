// Proofs: the paper's axiom system as executable mathematics. This example
// derives Example 1's rewrite and Example 4's date-hierarchy path as
// machine-checked proofs from the six axioms, and prints them in the
// paper's tabular style.
package main

import (
	"fmt"
	"log"

	"odlib"
	"odlib/internal/datetime"
)

func main() {
	// Theorem 8 (Left Eliminate) justifies Example 1: given
	// [month] ↦ [quarter], ORDER BY year, quarter, month collapses to
	// ORDER BY year, month.
	monthQuarter := odlib.NewOD(odlib.L("month"), odlib.L("quarter"))
	proof, err := odlib.Prove([]odlib.OD{monthQuarter}, func(b *odlib.ProofBuilder) int {
		od := b.Assume(monthQuarter)
		fwd, _ := b.LeftEliminate(od, odlib.L("year"), nil)
		return fwd
	})
	if err != nil {
		log.Fatal(err)
	}
	concl, _ := proof.Conclusion()
	fmt.Printf("Example 1 rewrite, proved from the axioms: %s\n\n%s\n", concl, proof)

	// Example 4: splice quarter into the date path (Theorem 10, Path).
	p4, err := datetime.Example4Proof()
	if err != nil {
		log.Fatal(err)
	}
	c4, _ := p4.Conclusion()
	fmt.Printf("Example 4, %d-step verified derivation of %s\n", len(p4.Steps), c4)

	// Theorem 11 (Partition) exercises the Chain axiom (OD6): two lists
	// over the same attribute set, each ordered by a common list, must be
	// order equivalent.
	w := odlib.L("W")
	pq := []odlib.OD{
		odlib.NewOD(w, odlib.L("A", "B")),
		odlib.NewOD(w, odlib.L("B", "A")),
	}
	partition, err := odlib.Prove(pq, func(b *odlib.ProofBuilder) int {
		f, _ := b.Partition(b.Assume(pq[0]), b.Assume(pq[1]))
		return f
	})
	if err != nil {
		log.Fatal(err)
	}
	cp, _ := partition.Conclusion()
	fmt.Printf("Theorem 11 (via the Chain axiom), %d steps: %s\n", len(partition.Steps), cp)

	// Every derived conclusion is also confirmed semantically by the
	// complete prover — soundness (Theorem 1) in action.
	r := odlib.NewReasoner([]odlib.OD{monthQuarter})
	ok, err := r.Implies(concl)
	if err != nil || !ok {
		log.Fatalf("prover disagrees with a verified proof: %v %v", ok, err)
	}
	fmt.Println("\nall conclusions re-checked by the complete implication prover")

	// The proof system rejects nonsense: deriving with a bad transitivity
	// step fails verification.
	_, err = odlib.Prove(pq, func(b *odlib.ProofBuilder) int {
		return b.Tran(b.Assume(pq[0]), b.Assume(pq[1])) // middles disagree
	})
	fmt.Printf("bogus derivation rejected: %v\n", err != nil)
}
