// Quickstart: declare order dependencies, reason about implication, and
// rewrite ORDER BY lists — the paper's Example 1 in a dozen lines.
package main

import (
	"fmt"
	"log"

	"odlib"
)

func main() {
	// The months of a year determine its quarters, and monotonically so:
	// as month grows, quarter never decreases. That is an order dependency
	// (OD) — strictly stronger than the FD month → quarter.
	constraints, err := odlib.ParseConstraints("[month] -> [quarter]")
	if err != nil {
		log.Fatal(err)
	}
	r := odlib.NewReasoner(constraints)

	// Example 1 of the paper: the ORDER BY of
	//   SELECT year, quarter, month, SUM(amount) ... ORDER BY year, quarter, month
	// can drop quarter — something the FD alone cannot justify, because
	// string-valued quarters like "Fall" < "Spring" would sort wrongly.
	reduced, err := odlib.ReduceOrderBy(odlib.L("year", "quarter", "month"), constraints)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORDER BY year, quarter, month  =>  ORDER BY %v\n", reduced)

	// The reasoner is sound and complete. Implications come back true...
	ok, err := r.Equivalent(odlib.L("year", "quarter", "month"), odlib.L("year", "month"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[year, quarter, month] <-> [year, month] implied: %v\n", ok)

	// ...and refutations come with a two-row counterexample.
	od, _ := odlib.ParseOD("[quarter] -> [month]")
	cx, err := r.Counterexample(od)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counterexample to %s:\n%s", od, cx)

	// Armstrong relation: an instance that satisfies exactly the closure of
	// the constraints (the paper's completeness construction, Section 4).
	table, err := odlib.ArmstrongRelation(constraints, odlib.L("month", "quarter", "year"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Armstrong relation (%d rows) satisfies exactly the implied ODs\n", table.Len())

	// And discovery inverts the process: mine ODs from data.
	rel, err := odlib.NewRelation(odlib.L("month", "quarter"))
	if err != nil {
		log.Fatal(err)
	}
	for m := int64(1); m <= 12; m++ {
		if err := rel.AddIntRow(m, (m-1)/3+1); err != nil {
			log.Fatal(err)
		}
	}
	found, err := odlib.DiscoverODs(rel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered from the calendar: %v\n", found)
}
