// Warehouse: the paper's Section 2.3 experiment at example scale. A
// TPC-DS-style star schema is generated, and each date-range query is run
// with the baseline join plan and with the OD-licensed rewrite — two probes
// into the date dimension plus a surrogate-key range scan, no join.
package main

import (
	"fmt"
	"log"

	"odlib/internal/warehouse"
)

func main() {
	cfg := warehouse.DefaultConfig()
	cfg.FactRows = 50_000
	w, err := warehouse.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The declared ODs really hold on the generated dimension — the
	// prototype's new check-constraint type.
	if err := w.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("date_dim: %d rows, store_sales: %d rows\n", w.DateDim.Len(), w.Sales.Len())
	fmt.Println("declared constraints verified against the dimension instance")
	fmt.Println()

	ms, err := warehouse.RunSuite(w, w.Queries18())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(warehouse.FormatTable(ms))
	fmt.Println()
	fmt.Println("paper reference: 13 TPC-DS queries rewritten on DB2 9.7 with an average gain")
	fmt.Println("of ~48%, later extended to 18 queries; every query gains here too, and the")
	fmt.Println("extension queries additionally drop their sort (ORDER BY satisfied by the")
	fmt.Println("fact index after join elimination).")
}
