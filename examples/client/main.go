// Client: the optimizer-side view of odserve through pkg/odclient —
// declare constraints, prove with coalescing and a generation-keyed cache,
// and run ReduceOrder⁺ against a remote catalog through the adapter that
// existing rewrite call sites accept unchanged.
//
// By default the example boots a throwaway in-process daemon so it runs
// standalone; set ODSERVE_URL to point it at a real one instead (the CI
// examples job does exactly that).
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"odlib/internal/core"
	"odlib/internal/router"
	"odlib/internal/server"
	"odlib/pkg/odclient"
)

func main() {
	url := os.Getenv("ODSERVE_URL")
	if url == "" {
		rt, err := router.Open(router.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer rt.Close()
		ts := httptest.NewServer(server.New(rt))
		defer ts.Close()
		url = ts.URL
		fmt.Printf("booted a throwaway in-process daemon at %s\n", url)
	} else {
		fmt.Printf("talking to %s\n", url)
	}

	// One shared client, everything on: coalescing (default), a 2ms batch
	// pipeline, a verdict cache revalidated by generation, and retries.
	c, err := odclient.New(url,
		odclient.WithPipelining(2*time.Millisecond, 64),
		odclient.WithCache(1024, 100*time.Millisecond),
		odclient.WithRetry(2, 20*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// The paper's Example 1 constraints, on their own schema shard.
	if err := c.Declare(ctx, "sales",
		"[month] -> [quarter]",
		"[day] -> [week]"); err != nil {
		log.Fatal(err)
	}

	// Prove an implied statement and a refuted one; refutations carry the
	// server's two-row counterexample.
	v, err := c.Prove(ctx, "sales", "[year, quarter, month] <-> [year, month]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[year, quarter, month] <-> [year, month] implied: %v (generation %d)\n",
		v.Implied, v.Generation)

	v, err = c.Prove(ctx, "sales", "[quarter] -> [month]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[quarter] -> [month] implied: %v\n", v.Implied)
	if v.Witness != nil {
		rel, err := v.Witness.Relation()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("counterexample (%d rows over %v): pattern %s\n",
			rel.Len(), rel.Attrs(), v.Witness.Pattern)
	}

	// A burst of concurrent identical questions — the optimizer's workload
	// shape. Coalescing and the cache collapse it to almost no traffic.
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Prove(ctx, "sales", "[year, month] -> [year, quarter]"); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	fmt.Printf("burst of 64 identical proves: %d HTTP requests total so far (%d cache hits, %d coalesce joins)\n",
		st.HTTPRequests, st.CacheHits, st.CoalesceJoins)

	// ReduceOrder⁺ against the remote catalog, two ways. The daemon-side
	// endpoint:
	rw, err := c.Rewrite(ctx, "sales", "[year, quarter, month]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("/rewrite: ORDER BY %s => ORDER BY %s\n", rw.Input, rw.Reduced)

	// And the client-side sweep through the rewrite.Oracle adapter — the
	// same code path local catalogs use, with only the implication
	// questions crossing the wire (coalesced and cached):
	res, err := c.ReduceOrder(ctx, "sales", core.L("year", "quarter", "month", "week", "day"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adapter:  ORDER BY %v => ORDER BY %v (%d eliminations)\n",
		res.Input, res.Reduced, len(res.Steps))
	for _, step := range res.Steps {
		fmt.Printf("  dropped %v by %s (justified by %v)\n", step.Seg, step.Rule, step.By)
	}

	gens, err := c.Generations(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard generations: %v\n", gens)
}
