// Discovery: mine order dependencies from real calendar data — the
// schema-design direction of the paper's Section 6. The minimal set the
// miner returns regenerates (a fragment of) the Figure 2 hierarchy without
// being told anything about dates.
package main

import (
	"fmt"
	"log"

	"odlib/internal/core"
	"odlib/internal/datetime"
	"odlib/internal/discover"
	"odlib/internal/prover"
)

func main() {
	cal, err := datetime.Calendar(2000, 730)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := cal.Project(core.L("date", "year", "quarter", "month", "week_seq"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mining %d days over %v\n\n", sub.Len(), sub.Attrs())

	res, err := discover.Discover(sub, discover.Options{MaxLHS: 1, MaxRHS: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidates enumerated: %d, validated against data: %d\n", res.Candidates, res.DataChecks)
	fmt.Printf("minimal OD set (%d dependencies):\n", len(res.ODs))
	for _, od := range res.ODs {
		fmt.Printf("  %s\n", od)
	}

	pairs, err := discover.CompatiblePairs(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\norder-compatible attribute pairs: %d\n", len(pairs))
	for _, p := range pairs {
		fmt.Printf("  [%s] ~ [%s]\n", p[0], p[1])
	}

	// The mined set regenerates the declared hierarchy knowledge.
	p := prover.New(res.ODs)
	for _, want := range []string{
		"[date] -> [year, quarter, month]",
		"[month] -> [quarter]",
		"[date] -> [week_seq]",
	} {
		ods, err := core.ParseStatements(want)
		if err != nil {
			log.Fatal(err)
		}
		ok, err := p.ImpliesAll(ods)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mined set implies %-35s %v\n", want, ok)
	}
}
