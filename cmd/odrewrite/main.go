// Command odrewrite minimizes ORDER BY and GROUP BY lists under declared
// dependencies, applying the paper's ReduceOrder⁺ (FD elimination plus the
// order-dependency Left Eliminate of Theorem 8) and explaining each step.
//
// Usage:
//
//	odrewrite -m "[month] -> [quarter]" -order "year, quarter, month"
//	odrewrite -m "[m] -> [q]" -fd "{m} -> {q}" -group "y, q, m" -order "y, q, m"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"odlib/internal/core"
	"odlib/internal/fd"
	"odlib/internal/rewrite"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "odrewrite:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("odrewrite", flag.ContinueOnError)
	inline := fs.String("m", "", "OD constraint statements, ';'-separated")
	fdFlag := fs.String("fd", "", "FD constraints, ';'-separated, e.g. {month} -> {quarter}")
	orderFlag := fs.String("order", "", "ORDER BY list to reduce")
	groupFlag := fs.String("group", "", "GROUP BY list to reduce")
	proof := fs.Bool("proof", false, "emit the machine-checkable equivalence proof")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ods, err := core.ParseStatements(*inline)
	if err != nil {
		return err
	}
	var fds []fd.FD
	for _, part := range strings.Split(*fdFlag, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFD(part)
		if err != nil {
			return err
		}
		fds = append(fds, f)
	}
	c := rewrite.NewConstraints(fds, ods)
	if *orderFlag == "" && *groupFlag == "" {
		return fmt.Errorf("nothing to do: pass -order and/or -group")
	}
	if *orderFlag != "" {
		order, err := core.ParseList(*orderFlag)
		if err != nil {
			return err
		}
		res, err := rewrite.ReduceOrder(order, c)
		if err != nil {
			return err
		}
		fmt.Printf("ORDER BY %v  =>  ORDER BY %v\n", res.Input, res.Reduced)
		for _, s := range res.Steps {
			fmt.Printf("  drop %v at %d by %s via %v\n", s.Seg, s.Pos, s.Rule, s.By)
		}
		if *proof {
			pr, err := res.Proof(c)
			if err != nil {
				return err
			}
			fmt.Println("equivalence proof (verified):")
			fmt.Print(pr)
		}
	}
	if *groupFlag != "" {
		group, err := core.ParseList(*groupFlag)
		if err != nil {
			return err
		}
		res := rewrite.ReduceGroupBy(group, c)
		fmt.Printf("GROUP BY %v  =>  GROUP BY %v\n", res.Input, res.Reduced)
		for _, s := range res.Steps {
			fmt.Printf("  drop %v by %s via %v\n", s.Seg, s.Rule, s.By)
		}
	}
	return nil
}

// parseFD parses "{A, B} -> {C}" (braces optional).
func parseFD(s string) (fd.FD, error) {
	parts := strings.SplitN(s, "->", 2)
	if len(parts) != 2 {
		return fd.FD{}, fmt.Errorf("bad FD %q", s)
	}
	clean := func(p string) (core.List, error) {
		p = strings.TrimSpace(p)
		p = strings.TrimPrefix(p, "{")
		p = strings.TrimSuffix(p, "}")
		return core.ParseList(p)
	}
	lhs, err := clean(parts[0])
	if err != nil {
		return fd.FD{}, err
	}
	rhs, err := clean(parts[1])
	if err != nil {
		return fd.FD{}, err
	}
	return fd.New(lhs, rhs), nil
}
