package main

import "testing"

func TestParseFD(t *testing.T) {
	f, err := parseFD("{month} -> {quarter}")
	if err != nil {
		t.Fatal(err)
	}
	if !f.LHS.Contains("month") || !f.RHS.Contains("quarter") {
		t.Errorf("parseFD = %v", f)
	}
	if _, err := parseFD("month quarter"); err == nil {
		t.Error("missing arrow must fail")
	}
	if _, err := parseFD("{mo nth} -> {q}"); err == nil {
		t.Error("bad attribute must fail")
	}
	if _, err := parseFD("{a} -> {b!}"); err == nil {
		t.Error("bad rhs must fail")
	}
}

func TestRunRewrite(t *testing.T) {
	if err := run([]string{"-m", "[month] -> [quarter]", "-order", "year, quarter, month", "-proof"}); err != nil {
		t.Errorf("run failed: %v", err)
	}
	if err := run([]string{"-m", "[m] -> [q]", "-fd", "{m} -> {q}", "-group", "y, q, m"}); err != nil {
		t.Errorf("group run failed: %v", err)
	}
	if err := run([]string{"-m", "[a] -> [b]"}); err == nil {
		t.Error("no work must fail")
	}
	if err := run([]string{"-m", "bad"}); err == nil {
		t.Error("bad constraints must fail")
	}
	if err := run([]string{"-order", "a,,b"}); err == nil {
		t.Error("bad order must fail")
	}
}
