// Command odbench regenerates the paper's experiments: the TPC-DS-style
// date-rewrite suites (13 base queries, 18 with the extension), the
// Example 1 order-by experiment, and scaling curves for the implication
// prover and the completeness construction.
//
// Usage:
//
//	odbench -experiment tpcds13 -rows 200000
//	odbench -experiment tpcds18
//	odbench -experiment example1 -rows 100000
//	odbench -experiment prover
//	odbench -experiment armstrong
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"odlib/internal/armstrong"
	"odlib/internal/core"
	"odlib/internal/engine"
	"odlib/internal/plan"
	"odlib/internal/prover"
	"odlib/internal/rewrite"
	"odlib/internal/warehouse"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "odbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("odbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "tpcds13", "one of tpcds13, tpcds18, example1, prover, armstrong")
	rows := fs.Int("rows", 100_000, "fact table rows")
	days := fs.Int("days", 731, "days in the date dimension")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *experiment {
	case "tpcds13", "tpcds18":
		return runTPCDS(*experiment, *rows, *days, *seed)
	case "example1":
		return runExample1(*rows)
	case "prover":
		return runProver()
	case "armstrong":
		return runArmstrong()
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
}

func runTPCDS(which string, rows, days int, seed int64) error {
	cfg := warehouse.DefaultConfig()
	cfg.FactRows = rows
	cfg.Days = days
	cfg.Seed = seed
	fmt.Printf("generating warehouse: %d days, %d fact rows (seed %d)\n", cfg.Days, cfg.FactRows, cfg.Seed)
	w, err := warehouse.Generate(cfg)
	if err != nil {
		return err
	}
	if err := w.Verify(); err != nil {
		return err
	}
	queries := w.Queries13()
	if which == "tpcds18" {
		queries = w.Queries18()
	}
	ms, err := warehouse.RunSuite(w, queries)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s — baseline join plan vs OD date-surrogate rewrite\n", which)
	fmt.Print(warehouse.FormatTable(ms))
	fmt.Println("\npaper reference: 13 rewrite-eligible TPC-DS queries, average gain ~48% on DB2 9.7;")
	fmt.Println("the prototype later rewrote 18 queries. Absolute numbers differ (different engine),")
	fmt.Println("the shape — every query gains, narrower windows gain more — reproduces.")
	return nil
}

func runExample1(rows int) error {
	tbl, err := engine.NewTable("sales", core.L("year", "quarter", "month", "amount"))
	if err != nil {
		return err
	}
	n := 0
	for n < rows {
		y := 2000 + n%5
		m := 1 + n%12
		if err := tbl.Insert(
			core.Int(int64(y)), core.Int(int64((m-1)/3+1)), core.Int(int64(m)),
			core.Int(int64(n%997))); err != nil {
			return err
		}
		n++
	}
	if _, err := tbl.BuildIndex("ym", core.L("year", "month")); err != nil {
		return err
	}
	q := plan.Query{
		Table:   tbl,
		GroupBy: core.L("year", "quarter", "month"),
		Aggs:    []engine.Agg{{Kind: engine.Sum, Attr: "amount", As: "sum_amount"}},
		OrderBy: core.L("year", "quarter", "month"),
	}
	ods, err := core.ParseStatements("[month] -> [quarter]")
	if err != nil {
		return err
	}
	for _, mode := range []struct {
		name string
		c    *rewrite.Constraints
	}{
		{"baseline (no OD)", rewrite.NewConstraints(nil, nil)},
		{"with [month] -> [quarter]", rewrite.NewConstraints(nil, ods)},
	} {
		var stats engine.Stats
		p := plan.NewPlanner(mode.c)
		t0 := time.Now()
		pl, err := p.PlanQuery(q, &stats)
		if err != nil {
			return err
		}
		out, err := pl.Execute(&stats)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s: %d groups in %v, cost %d, sorts %d\n",
			mode.name, len(out), time.Since(t0), stats.Cost(), stats.Sorts)
		fmt.Println(pl.Explain())
	}
	return nil
}

func runProver() error {
	fmt.Println("implication cost vs mentioned attributes (the search is ~3^n; co-NP-complete in general)")
	fmt.Printf("%8s %14s %14s\n", "attrs", "implied", "refuted")
	for n := 4; n <= 12; n += 2 {
		m, target, refuted := proverInstance(n)
		p := prover.New(m)
		t0 := time.Now()
		if _, err := p.Implies(target); err != nil {
			return err
		}
		dImplied := time.Since(t0)
		p2 := prover.New(m)
		t1 := time.Now()
		if _, err := p2.Implies(refuted); err != nil {
			return err
		}
		dRefuted := time.Since(t1)
		fmt.Printf("%8d %14v %14v\n", n, dImplied, dRefuted)
	}
	return nil
}

// proverInstance builds a transitive chain A0 ↦ A1 ↦ … over n attributes,
// an implied query (ends of the chain) and a refuted one (reversed).
func proverInstance(n int) (m []core.OD, implied, refuted core.OD) {
	attr := func(i int) core.Attribute { return core.Attribute(fmt.Sprintf("A%d", i)) }
	for i := 0; i+1 < n; i++ {
		m = append(m, core.NewOD(core.List{attr(i)}, core.List{attr(i + 1)}))
	}
	implied = core.NewOD(core.List{attr(0)}, core.List{attr(n - 1)})
	refuted = core.NewOD(core.List{attr(n - 1)}, core.List{attr(0)})
	return m, implied, refuted
}

func runArmstrong() error {
	fmt.Println("completeness construction sizes (canonical = paper's split/swap; enumeration = all satisfying patterns)")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "attrs", "canon rows", "canon time", "enum rows", "enum time")
	for n := 2; n <= 5; n++ {
		universe := make(core.List, n)
		for i := range universe {
			universe[i] = core.Attribute(fmt.Sprintf("A%d", i))
		}
		var m []core.OD
		for i := 0; i+1 < n; i++ {
			m = append(m, core.NewOD(core.List{universe[i]}, core.List{universe[i+1]}))
		}
		b := armstrong.NewBuilder(0)
		t0 := time.Now()
		canon, err := b.CanonicalTable(m, universe)
		if err != nil {
			return err
		}
		dCanon := time.Since(t0)
		t1 := time.Now()
		enum, err := armstrong.EnumerationTable(m, universe)
		if err != nil {
			return err
		}
		dEnum := time.Since(t1)
		fmt.Printf("%8d %12d %12v %12d %12v\n", n, canon.Len(), dCanon, enum.Len(), dEnum)
	}
	return nil
}
