// Command odbench regenerates the paper's experiments: the TPC-DS-style
// date-rewrite suites (13 base queries, 18 with the extension), the
// Example 1 order-by experiment, scaling curves for the implication
// prover and the completeness construction, the catalog experiment
// comparing cold prover calls against memoized catalog calls, and the
// batch experiment comparing single-statement /prove round trips against
// /prove/batch over a sharded daemon.
//
// Usage:
//
//	odbench -experiment tpcds13 -rows 200000
//	odbench -experiment tpcds18
//	odbench -experiment example1 -rows 100000
//	odbench -experiment prover
//	odbench -experiment armstrong
//	odbench -experiment catalog -json
//	odbench -experiment batch -json
//	odbench -experiment parallel -json
//	odbench -experiment churn -json
//	odbench -experiment client -json
//	odbench -experiment recovery -json
//	odbench -experiment saturation -json
//	odbench -experiment discover -json
//	odbench -experiment replica -json
//
// With -json, machine-readable results are additionally written to
// BENCH_<experiment>.json in the output directory (-out, default ".").
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"odlib/internal/armstrong"
	"odlib/internal/catalog"
	"odlib/internal/core"
	"odlib/internal/discover"
	"odlib/internal/engine"
	"odlib/internal/metrics"
	"odlib/internal/plan"
	"odlib/internal/prover"
	"odlib/internal/replica"
	"odlib/internal/rewrite"
	"odlib/internal/router"
	"odlib/internal/server"
	"odlib/internal/store"
	"odlib/internal/warehouse"
	"odlib/pkg/odclient"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "odbench:", err)
		os.Exit(1)
	}
}

// benchResult is the machine-readable outcome of one experiment, written as
// BENCH_<experiment>.json when -json is set.
type benchResult struct {
	Experiment string         `json:"experiment"`
	Params     map[string]any `json:"params,omitempty"`
	Metrics    []metric       `json:"metrics"`
}

// metric is one named measurement.
type metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("odbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "tpcds13", "one of tpcds13, tpcds18, example1, prover, armstrong, catalog, batch, parallel, churn, client, recovery, saturation, discover, replica")
	rows := fs.Int("rows", 100_000, "fact table rows")
	days := fs.Int("days", 731, "days in the date dimension")
	seed := fs.Int64("seed", 1, "generator seed")
	jsonOut := fs.Bool("json", false, "also write BENCH_<experiment>.json")
	outDir := fs.String("out", ".", "directory for -json output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		res *benchResult
		err error
	)
	switch *experiment {
	case "tpcds13", "tpcds18":
		res, err = runTPCDS(*experiment, *rows, *days, *seed)
	case "example1":
		res, err = runExample1(*rows)
	case "prover":
		res, err = runProver()
	case "armstrong":
		res, err = runArmstrong()
	case "catalog":
		res, err = runCatalog()
	case "batch":
		res, err = runBatch(*seed)
	case "parallel":
		res, err = runParallel(*seed)
	case "churn":
		res, err = runChurn(*seed)
	case "client":
		res, err = runClient(*seed)
	case "recovery":
		res, err = runRecovery()
	case "saturation":
		res, err = runSaturation(*seed)
	case "discover":
		res, err = runDiscover(*seed)
	case "replica":
		res, err = runReplica(*seed)
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		path := filepath.Join(*outDir, "BENCH_"+res.Experiment+".json")
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", path)
	}
	return nil
}

func runTPCDS(which string, rows, days int, seed int64) (*benchResult, error) {
	cfg := warehouse.DefaultConfig()
	cfg.FactRows = rows
	cfg.Days = days
	cfg.Seed = seed
	fmt.Printf("generating warehouse: %d days, %d fact rows (seed %d)\n", cfg.Days, cfg.FactRows, cfg.Seed)
	w, err := warehouse.Generate(cfg)
	if err != nil {
		return nil, err
	}
	if err := w.Verify(); err != nil {
		return nil, err
	}
	queries := w.Queries13()
	if which == "tpcds18" {
		queries = w.Queries18()
	}
	ms, err := warehouse.RunSuite(w, queries)
	if err != nil {
		return nil, err
	}
	fmt.Printf("\n%s — baseline join plan vs OD date-surrogate rewrite\n", which)
	fmt.Print(warehouse.FormatTable(ms))
	fmt.Println("\npaper reference: 13 rewrite-eligible TPC-DS queries, average gain ~48% on DB2 9.7;")
	fmt.Println("the prototype later rewrote 18 queries. Absolute numbers differ (different engine),")
	fmt.Println("the shape — every query gains, narrower windows gain more — reproduces.")

	res := &benchResult{
		Experiment: which,
		Params:     map[string]any{"rows": rows, "days": days, "seed": seed},
	}
	var avg float64
	for _, m := range ms {
		res.Metrics = append(res.Metrics,
			metric{Name: m.Name + "/cost_gain", Value: m.CostGain(), Unit: "percent"},
			metric{Name: m.Name + "/time_gain", Value: m.TimeGain(), Unit: "percent"},
		)
		avg += m.CostGain()
	}
	if len(ms) > 0 {
		res.Metrics = append(res.Metrics,
			metric{Name: "avg_cost_gain", Value: avg / float64(len(ms)), Unit: "percent"})
	}
	return res, nil
}

func runExample1(rows int) (*benchResult, error) {
	tbl, err := engine.NewTable("sales", core.L("year", "quarter", "month", "amount"))
	if err != nil {
		return nil, err
	}
	n := 0
	for n < rows {
		y := 2000 + n%5
		m := 1 + n%12
		if err := tbl.Insert(
			core.Int(int64(y)), core.Int(int64((m-1)/3+1)), core.Int(int64(m)),
			core.Int(int64(n%997))); err != nil {
			return nil, err
		}
		n++
	}
	if _, err := tbl.BuildIndex("ym", core.L("year", "month")); err != nil {
		return nil, err
	}
	q := plan.Query{
		Table:   tbl,
		GroupBy: core.L("year", "quarter", "month"),
		Aggs:    []engine.Agg{{Kind: engine.Sum, Attr: "amount", As: "sum_amount"}},
		OrderBy: core.L("year", "quarter", "month"),
	}
	ods, err := core.ParseStatements("[month] -> [quarter]")
	if err != nil {
		return nil, err
	}
	res := &benchResult{Experiment: "example1", Params: map[string]any{"rows": rows}}
	for _, mode := range []struct {
		name string
		key  string
		c    *rewrite.Constraints
	}{
		{"baseline (no OD)", "baseline", rewrite.NewConstraints(nil, nil)},
		{"with [month] -> [quarter]", "with_od", rewrite.NewConstraints(nil, ods)},
	} {
		var stats engine.Stats
		p := plan.NewPlanner(mode.c)
		t0 := time.Now()
		pl, err := p.PlanQuery(q, &stats)
		if err != nil {
			return nil, err
		}
		out, err := pl.Execute(&stats)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(t0)
		fmt.Printf("\n%s: %d groups in %v, cost %d, sorts %d\n",
			mode.name, len(out), elapsed, stats.Cost(), stats.Sorts)
		fmt.Println(pl.Explain())
		res.Metrics = append(res.Metrics,
			metric{Name: mode.key + "/time", Value: float64(elapsed.Nanoseconds()), Unit: "ns"},
			metric{Name: mode.key + "/cost", Value: float64(stats.Cost()), Unit: "cost"},
			metric{Name: mode.key + "/sorts", Value: float64(stats.Sorts), Unit: "count"},
		)
	}
	return res, nil
}

func runProver() (*benchResult, error) {
	fmt.Println("implication cost vs mentioned attributes (the search is ~3^n; co-NP-complete in general)")
	fmt.Printf("%8s %14s %14s\n", "attrs", "implied", "refuted")
	res := &benchResult{Experiment: "prover"}
	for n := 4; n <= 12; n += 2 {
		m, target, refuted := proverInstance(n)
		p := prover.New(m)
		t0 := time.Now()
		if _, err := p.Implies(target); err != nil {
			return nil, err
		}
		dImplied := time.Since(t0)
		p2 := prover.New(m)
		t1 := time.Now()
		if _, err := p2.Implies(refuted); err != nil {
			return nil, err
		}
		dRefuted := time.Since(t1)
		fmt.Printf("%8d %14v %14v\n", n, dImplied, dRefuted)
		res.Metrics = append(res.Metrics,
			metric{Name: fmt.Sprintf("implied/attrs=%d", n), Value: float64(dImplied.Nanoseconds()), Unit: "ns"},
			metric{Name: fmt.Sprintf("refuted/attrs=%d", n), Value: float64(dRefuted.Nanoseconds()), Unit: "ns"},
		)
	}
	return res, nil
}

// proverInstance builds a transitive chain A0 ↦ A1 ↦ … over n attributes,
// an implied query (ends of the chain) and a refuted one (reversed).
func proverInstance(n int) (m []core.OD, implied, refuted core.OD) {
	attr := func(i int) core.Attribute { return core.Attribute(fmt.Sprintf("A%d", i)) }
	for i := 0; i+1 < n; i++ {
		m = append(m, core.NewOD(core.List{attr(i)}, core.List{attr(i + 1)}))
	}
	implied = core.NewOD(core.List{attr(0)}, core.List{attr(n - 1)})
	refuted = core.NewOD(core.List{attr(n - 1)}, core.List{attr(0)})
	return m, implied, refuted
}

func runArmstrong() (*benchResult, error) {
	fmt.Println("completeness construction sizes (canonical = paper's split/swap; enumeration = all satisfying patterns)")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "attrs", "canon rows", "canon time", "enum rows", "enum time")
	res := &benchResult{Experiment: "armstrong"}
	for n := 2; n <= 5; n++ {
		universe := make(core.List, n)
		for i := range universe {
			universe[i] = core.Attribute(fmt.Sprintf("A%d", i))
		}
		var m []core.OD
		for i := 0; i+1 < n; i++ {
			m = append(m, core.NewOD(core.List{universe[i]}, core.List{universe[i+1]}))
		}
		b := armstrong.NewBuilder(0)
		t0 := time.Now()
		canon, err := b.CanonicalTable(m, universe)
		if err != nil {
			return nil, err
		}
		dCanon := time.Since(t0)
		t1 := time.Now()
		enum, err := armstrong.EnumerationTable(m, universe)
		if err != nil {
			return nil, err
		}
		dEnum := time.Since(t1)
		fmt.Printf("%8d %12d %12v %12d %12v\n", n, canon.Len(), dCanon, enum.Len(), dEnum)
		res.Metrics = append(res.Metrics,
			metric{Name: fmt.Sprintf("canon_rows/attrs=%d", n), Value: float64(canon.Len()), Unit: "rows"},
			metric{Name: fmt.Sprintf("enum_rows/attrs=%d", n), Value: float64(enum.Len()), Unit: "rows"},
		)
	}
	return res, nil
}

// runBatch measures what the batch endpoints buy over the wire: the same
// prove workload sent as one-statement /prove requests versus /prove/batch
// chunks, against a real HTTP daemon over a sharded catalog. The workload is
// the production shape the router was built for — 1k declared ODs spread
// over 8 schema shards, query popularity Zipf-distributed over the shards
// (hot schemas dominate, cold ones tail off) — so a batch regularly mixes
// shards and the router must group per shard, answer each group against one
// snapshot, and merge in order.
func runBatch(seed int64) (*benchResult, error) {
	const (
		shards     = 8
		chains     = 25 // disjoint transitive chains per shard
		chainLen   = 5  // edges per chain: 8 * 25 * 5 = 1k declared ODs
		statements = 4096
		batchSize  = 128
		zipfS      = 1.3
	)
	rng := rand.New(rand.NewSource(seed))

	rt, err := router.Open(router.Options{ShardByPrefix: true})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	ts := httptest.NewServer(server.New(rt))
	defer ts.Close()
	client := ts.Client()

	// Populate: each shard holds many short disjoint chains
	// s<k>_c<c>_a0 -> ... -> s<k>_c<c>_a5, so implication questions span
	// real transitive structure while staying within the prover's
	// entangled-attribute budget. Attribute prefixes route statements to
	// their shard without explicit schemas.
	attr := func(sh, c, i int) string { return fmt.Sprintf("s%d_c%d_a%d", sh, c, i) }
	for sh := 0; sh < shards; sh++ {
		var decl []string
		for c := 0; c < chains; c++ {
			for i := 0; i < chainLen; i++ {
				decl = append(decl, fmt.Sprintf("[%s] -> [%s]", attr(sh, c, i), attr(sh, c, i+1)))
			}
		}
		body, err := json.Marshal(map[string]any{"declare": decl})
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(ts.URL+"/ods/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return nil, fmt.Errorf("populate shard %d: status %d", sh, resp.StatusCode)
		}
	}

	// Query pool per shard: implied chain spans and refuted reversals.
	pool := make([][]string, shards)
	for sh := 0; sh < shards; sh++ {
		for i := 0; i < 16; i++ {
			c := rng.Intn(chains)
			lo := rng.Intn(chainLen)
			hi := lo + 1 + rng.Intn(chainLen+1-lo-1)
			stmt := fmt.Sprintf("[%s] -> [%s]", attr(sh, c, lo), attr(sh, c, hi))
			if i%4 == 3 { // a quarter of the pool is refuted reversals
				stmt = fmt.Sprintf("[%s] -> [%s]", attr(sh, c, hi), attr(sh, c, lo))
			}
			pool[sh] = append(pool[sh], stmt)
		}
	}
	zipf := rand.NewZipf(rng, zipfS, 1, shards-1)
	workload := make([]string, statements)
	for i := range workload {
		sh := int(zipf.Uint64())
		workload[i] = pool[sh][rng.Intn(len(pool[sh]))]
	}

	proveOne := func(stmt string) error {
		body, _ := json.Marshal(map[string]string{"statement": stmt})
		resp, err := client.Post(ts.URL+"/prove", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("prove: status %d", resp.StatusCode)
		}
		var out struct {
			Implied bool `json:"implied"`
		}
		return json.NewDecoder(resp.Body).Decode(&out)
	}
	proveBatch := func(stmts []string) error {
		body, _ := json.Marshal(map[string]any{"statements": stmts})
		resp, err := client.Post(ts.URL+"/prove/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("prove/batch: status %d", resp.StatusCode)
		}
		var out struct {
			Results []struct {
				Implied bool `json:"implied"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return err
		}
		if len(out.Results) != len(stmts) {
			return fmt.Errorf("prove/batch: %d results for %d statements", len(out.Results), len(stmts))
		}
		return nil
	}

	// Warm the verdict memos once so both paths measure transport and
	// snapshot amortization, not first-touch prover runs.
	for sh := range pool {
		if err := proveBatch(pool[sh]); err != nil {
			return nil, err
		}
	}

	fmt.Printf("batch experiment — %d ODs over %d shards, %d statements, Zipf(s=%.1f) shard popularity\n",
		shards*chains*chainLen, shards, statements, zipfS)

	t0 := time.Now()
	for _, stmt := range workload {
		if err := proveOne(stmt); err != nil {
			return nil, err
		}
	}
	single := time.Since(t0)

	t1 := time.Now()
	for lo := 0; lo < len(workload); lo += batchSize {
		hi := min(lo+batchSize, len(workload))
		if err := proveBatch(workload[lo:hi]); err != nil {
			return nil, err
		}
	}
	batched := time.Since(t1)

	singleRate := float64(statements) / single.Seconds()
	batchRate := float64(statements) / batched.Seconds()
	speedup := batchRate / singleRate
	fmt.Printf("%12s %14s %16s\n", "", "total", "statements/sec")
	fmt.Printf("%12s %14v %16.0f\n", "single", single, singleRate)
	fmt.Printf("%12s %14v %16.0f\n", "batched", batched, batchRate)
	fmt.Printf("speedup: %.1fx (batch size %d)\n", speedup, batchSize)
	if speedup < 5 {
		// A warning, not an error: wall-clock ratios on loaded machines can
		// absorb scheduler stalls. Steady state is well above the 5x floor.
		fmt.Printf("WARNING: speedup below the expected 5x floor\n")
	}

	return &benchResult{
		Experiment: "batch",
		Params: map[string]any{
			"ods": shards * chains * chainLen, "shards": shards, "statements": statements,
			"batch_size": batchSize, "zipf_s": zipfS, "seed": seed,
		},
		Metrics: []metric{
			{Name: "single/total", Value: float64(single.Nanoseconds()), Unit: "ns"},
			{Name: "batched/total", Value: float64(batched.Nanoseconds()), Unit: "ns"},
			{Name: "single/stmts_per_sec", Value: singleRate, Unit: "1/s"},
			{Name: "batched/stmts_per_sec", Value: batchRate, Unit: "1/s"},
			{Name: "speedup", Value: speedup, Unit: "x"},
		},
	}, nil
}

// deepSwapQuestion builds one refuted implication whose every counterexample
// needs a Greater sign on the second-sorted attribute — the region the
// sequential depth-first search reaches last. With k padding attributes the
// sequential search grinds ≈ 3.5·3^k nodes before refuting; a prefix-sharded
// worker pool with cancel-on-first-witness finds the counterexample near the
// start of a late block and stops the whole pool, so the speedup holds even
// without spare cores. tag disambiguates attribute names across instances.
func deepSwapQuestion(tag string, k int) (m []core.OD, target core.OD) {
	pad := make(core.List, k)
	for i := range pad {
		pad[i] = core.Attribute(fmt.Sprintf("%s_p%02d", tag, i))
	}
	aa := core.Attribute(tag + "_aa")
	ab := core.Attribute(tag + "_ab")
	lhs := append(core.List{aa}, pad...)
	m = append(m, core.NewOD(lhs, append(lhs.Clone(), ab)))
	for _, p := range pad {
		m = append(m, core.NewOD(core.List{ab}, core.List{p}))
	}
	return m, core.NewOD(lhs, core.List{ab})
}

// chainTailQuestion builds a transitive chain and the reversal of its last
// link: refuted, with the counterexample (Less down the whole chain, Equal
// on the tail) sitting roughly 40% into the sequential enumeration.
func chainTailQuestion(tag string, n int) (m []core.OD, target core.OD) {
	attr := func(i int) core.Attribute { return core.Attribute(fmt.Sprintf("%s_a%02d", tag, i)) }
	for i := 0; i+1 < n; i++ {
		m = append(m, core.NewOD(core.List{attr(i)}, core.List{attr(i + 1)}))
	}
	return m, core.NewOD(core.List{attr(n - 1)}, core.List{attr(n - 2)})
}

// runParallel measures what the goroutine-split search buys on refuted-heavy,
// search-exhausting workloads: the same question set decided with 1, 2 and
// GOMAXPROCS-or-4 workers, fresh provers throughout (no memo — this measures
// the search, not the cache). Counterexamples in these instances hide in the
// subtrees sequential DFS visits last, so the pool's evenly spaced block
// starts plus cancel-on-first-witness cut total nodes by an order of
// magnitude — wall-clock throughput rises even on a single core, and scales
// further with real ones.
func runParallel(seed int64) (*benchResult, error) {
	const (
		deepSwaps  = 24
		chainTails = 8
		padAttrs   = 10 // 12-attr universe: ≈ 3.5·3^10 ≈ 207k nodes sequential
		chainLen   = 12
	)
	parallelWorkers := runtime.GOMAXPROCS(0)
	if parallelWorkers < 4 {
		parallelWorkers = 4
	}

	type question struct {
		m      []core.OD
		target core.OD
	}
	var questions []question
	for i := 0; i < deepSwaps; i++ {
		m, target := deepSwapQuestion(fmt.Sprintf("q%02d", i), padAttrs)
		questions = append(questions, question{m, target})
	}
	for i := 0; i < chainTails; i++ {
		m, target := chainTailQuestion(fmt.Sprintf("r%02d", i), chainLen)
		questions = append(questions, question{m, target})
	}
	_ = seed // the workload is deterministic; seed kept for interface symmetry

	fmt.Printf("parallel experiment — %d refuted-heavy questions (%d deep-swap + %d chain-tail), GOMAXPROCS=%d\n",
		len(questions), deepSwaps, chainTails, runtime.GOMAXPROCS(0))
	fmt.Printf("%10s %14s %16s %14s\n", "workers", "total", "questions/sec", "nodes")

	res := &benchResult{
		Experiment: "parallel",
		Params: map[string]any{
			"questions": len(questions), "deep_swaps": deepSwaps, "chain_tails": chainTails,
			"pad_attrs": padAttrs, "chain_len": chainLen,
			"gomaxprocs": runtime.GOMAXPROCS(0), "parallel_workers": parallelWorkers,
		},
	}
	rates := map[int]float64{}
	nodeTotals := map[int]uint64{}
	for _, workers := range []int{1, 2, parallelWorkers} {
		var counters prover.Counters
		t0 := time.Now()
		for _, q := range questions {
			p := prover.New(q.m, prover.WithWorkers(workers), prover.WithCounters(&counters))
			ok, w, err := p.ImpliesWitness(q.target)
			if err != nil {
				return nil, err
			}
			if ok || w == nil {
				return nil, fmt.Errorf("parallel: %s should be refuted with a witness", q.target)
			}
		}
		total := time.Since(t0)
		rate := float64(len(questions)) / total.Seconds()
		rates[workers] = rate
		nodes := counters.Nodes.Load()
		nodeTotals[workers] = nodes
		fmt.Printf("%10d %14v %16.0f %14d\n", workers, total, rate, nodes)
		res.Metrics = append(res.Metrics,
			metric{Name: fmt.Sprintf("workers=%d/total", workers), Value: float64(total.Nanoseconds()), Unit: "ns"},
			metric{Name: fmt.Sprintf("workers=%d/questions_per_sec", workers), Value: rate, Unit: "1/s"},
			metric{Name: fmt.Sprintf("workers=%d/nodes", workers), Value: float64(nodes), Unit: "count"},
		)
	}
	speedup := rates[parallelWorkers] / rates[1]
	// node_ratio is the scheduler-independent form of the same win: how many
	// fewer tree nodes the pool visits before the workload's refutations are
	// all found. CI gates this ratio — a loaded runner can smear wall-clock
	// throughput, but not the enumeration's node counts.
	nodeRatio := float64(nodeTotals[1]) / float64(max(nodeTotals[parallelWorkers], 1))
	fmt.Printf("speedup: %.1fx wall clock, %.1fx nodes (%d workers vs 1)\n",
		speedup, nodeRatio, parallelWorkers)
	if speedup < 1.5 {
		// A warning, not an error: a measurement on a loaded box must not
		// masquerade as a correctness failure.
		fmt.Printf("WARNING: wall-clock speedup below the expected 1.5x floor\n")
	}
	res.Metrics = append(res.Metrics,
		metric{Name: "speedup", Value: speedup, Unit: "x"},
		metric{Name: "node_ratio", Value: nodeRatio, Unit: "x"})
	return res, nil
}

// runChurn interleaves catalog mutations with prove traffic: every mutation
// bumps the generation and wipes the memo, so the experiment prices exactly
// what a generation bump costs each verdict tier. Unrelated churn (constraints
// over foreign attributes) must NOT force re-searches of standing refutations
// — the negative closure revalidates its witnesses and keeps serving them in
// O(1) — while chain-cutting churn genuinely invalidates and must re-search.
func runChurn(seed int64) (*benchResult, error) {
	const (
		chains      = 6
		chainLen    = 5 // 6 attrs per chain
		generations = 60
		churnRatio  = 5 // 1 in churnRatio mutations cuts a chain link
	)
	rng := rand.New(rand.NewSource(seed))
	attr := func(c, i int) core.Attribute { return core.Attribute(fmt.Sprintf("g%d_a%d", c, i)) }

	cat := catalog.New(catalog.WithWorkers(2))
	var links []core.OD
	for c := 0; c < chains; c++ {
		for i := 0; i < chainLen; i++ {
			links = append(links, core.NewOD(core.List{attr(c, i)}, core.List{attr(c, i+1)}))
		}
	}
	cat.Add(links...)

	// Question pool: refuted reversals (negative-closure material), implied
	// spans (closure tier) and order-compat forms (memo/search tier).
	var pool [][]core.OD
	for c := 0; c < chains; c++ {
		pool = append(pool,
			[]core.OD{core.NewOD(core.List{attr(c, chainLen)}, core.List{attr(c, 0)})}, // reversal: refuted
			[]core.OD{core.NewOD(core.List{attr(c, 0)}, core.List{attr(c, chainLen)})}, // span: closure hit
			core.OrderCompat(core.List{attr(c, 0)}, core.List{attr(c, 2)}),             // implied, search-only
		)
	}

	warm := func() error {
		res, _ := cat.ProveEach(pool)
		for i, r := range res {
			if r.Err != nil {
				return fmt.Errorf("churn: question %d: %w", i, r.Err)
			}
		}
		return nil
	}
	if err := warm(); err != nil {
		return nil, err
	}

	before := cat.Stats()
	var mutTime, proveTime time.Duration
	cut := -1 // index of the currently cut link, -1 when intact
	for g := 0; g < generations; g++ {
		t0 := time.Now()
		switch {
		case cut >= 0:
			// Restore the cut link first so the catalog returns to steady
			// state before the next churn step.
			cat.Add(links[cut])
			cut = -1
		case g%churnRatio == churnRatio-1:
			cut = rng.Intn(len(links))
			cat.Remove(links[cut])
		default:
			// Unrelated churn: toggle a constraint over foreign attributes.
			od := core.NewOD(
				core.List{core.Attribute(fmt.Sprintf("x%d", g))},
				core.List{core.Attribute(fmt.Sprintf("y%d", g))})
			cat.Add(od)
		}
		mutTime += time.Since(t0)

		t1 := time.Now()
		if err := warm(); err != nil {
			return nil, err
		}
		proveTime += time.Since(t1)
	}
	after := cat.Stats()

	proves := generations * len(pool)
	d := func(get func(catalog.Stats) uint64) uint64 { return get(after) - get(before) }
	searches := d(func(s catalog.Stats) uint64 { return s.Tiers.Search })
	negHits := d(func(s catalog.Stats) uint64 { return s.Tiers.Negative })
	memoHits := d(func(s catalog.Stats) uint64 { return s.Tiers.Memo })
	closureHits := d(func(s catalog.Stats) uint64 { return s.Tiers.Closure })
	proveRate := float64(proves) / proveTime.Seconds()

	fmt.Printf("churn experiment — %d generations over %d ODs, %d proves/generation\n",
		generations, len(links), len(pool))
	fmt.Printf("%22s %12v\n", "mutation time (avg)", mutTime/time.Duration(generations))
	fmt.Printf("%22s %12.0f\n", "proves/sec", proveRate)
	fmt.Printf("%22s %12.2f\n", "searches/generation", float64(searches)/float64(generations))
	fmt.Printf("tier hits per generation: closure %.1f, negative %.1f, memo %.1f\n",
		float64(closureHits)/float64(generations),
		float64(negHits)/float64(generations),
		float64(memoHits)/float64(generations))
	fmt.Printf("negative closure resident: %d (survived %d generation bumps)\n",
		after.Negative, after.Generation-before.Generation)

	return &benchResult{
		Experiment: "churn",
		Params: map[string]any{
			"chains": chains, "chain_len": chainLen, "generations": generations,
			"pool": len(pool), "churn_ratio": churnRatio, "seed": seed,
		},
		Metrics: []metric{
			{Name: "proves_per_sec", Value: proveRate, Unit: "1/s"},
			{Name: "mutation_avg", Value: float64(mutTime.Nanoseconds()) / float64(generations), Unit: "ns"},
			{Name: "searches_per_generation", Value: float64(searches) / float64(generations), Unit: "count"},
			{Name: "negative_hits_per_generation", Value: float64(negHits) / float64(generations), Unit: "count"},
			{Name: "memo_hits_per_generation", Value: float64(memoHits) / float64(generations), Unit: "count"},
			{Name: "closure_hits_per_generation", Value: float64(closureHits) / float64(generations), Unit: "count"},
			{Name: "negative_resident", Value: float64(after.Negative), Unit: "count"},
		},
	}, nil
}

// runClient measures what pkg/odclient's coalescing, pipelining and
// generation-keyed cache buy under the workload the paper's optimizer
// integration implies: many concurrent sessions asking bursts of
// near-duplicate implication questions. 32 goroutines issue Zipf-skewed
// prove traffic against a live daemon twice — once through a direct client
// (every Prove is one HTTP request) and once through a coalesced+pipelined+
// cached client — and the daemon counts the requests it actually observes.
// The request-count ratio is scheduler-independent (unlike wall clock), so
// CI gates a 2x floor on it.
func runClient(seed int64) (*benchResult, error) {
	const (
		shards     = 4
		chains     = 12
		chainLen   = 5 // 4 * 12 * 5 = 240 declared ODs
		goroutines = 32
		provesPerG = 256 // 8192 proves per run
		poolSize   = 16  // distinct statements per shard
		zipfS      = 1.3
	)
	rng := rand.New(rand.NewSource(seed))

	rt, err := router.Open(router.Options{ShardByPrefix: true})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	// observed counts every request the daemon actually serves — the
	// number the client-side machinery exists to shrink.
	var observed atomic.Int64
	srv := server.New(rt)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		observed.Add(1)
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()

	// Populate: disjoint transitive chains per shard, routed by attribute
	// prefix (same shape as the batch experiment).
	attr := func(sh, c, i int) string { return fmt.Sprintf("s%d_c%d_a%d", sh, c, i) }
	seedClient, err := odclient.New(ts.URL, odclient.WithHTTPClient(ts.Client()))
	if err != nil {
		return nil, err
	}
	defer seedClient.Close()
	for sh := 0; sh < shards; sh++ {
		var decl []string
		for c := 0; c < chains; c++ {
			for i := 0; i < chainLen; i++ {
				decl = append(decl, fmt.Sprintf("[%s] -> [%s]", attr(sh, c, i), attr(sh, c, i+1)))
			}
		}
		if _, err := seedClient.Mutate(context.Background(), "", decl, nil); err != nil {
			return nil, fmt.Errorf("populate shard %d: %w", sh, err)
		}
	}

	// Statement pool per shard: implied chain spans and refuted reversals.
	// Query popularity is Zipf over shards and uniform within a shard's
	// pool, so hot statements recur across goroutines — the burst shape
	// coalescing and the cache are built for.
	pool := make([][]string, shards)
	for sh := 0; sh < shards; sh++ {
		for i := 0; i < poolSize; i++ {
			c := rng.Intn(chains)
			lo := rng.Intn(chainLen)
			hi := lo + 1 + rng.Intn(chainLen-lo)
			stmt := fmt.Sprintf("[%s] -> [%s]", attr(sh, c, lo), attr(sh, c, hi))
			if i%4 == 3 {
				stmt = fmt.Sprintf("[%s] -> [%s]", attr(sh, c, hi), attr(sh, c, lo))
			}
			pool[sh] = append(pool[sh], stmt)
		}
	}
	zipf := rand.NewZipf(rng, zipfS, 1, shards-1)
	workload := make([]string, goroutines*provesPerG)
	for i := range workload {
		sh := int(zipf.Uint64())
		workload[i] = pool[sh][rng.Intn(len(pool[sh]))]
	}

	// run drives the shared workload through one client from `goroutines`
	// goroutines and reports elapsed time and server-observed requests.
	run := func(c *odclient.Client) (time.Duration, int64, error) {
		observed.Store(0)
		var wg sync.WaitGroup
		errs := make([]error, goroutines)
		t0 := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g * provesPerG; i < (g+1)*provesPerG; i++ {
					if _, err := c.Prove(context.Background(), "", workload[i]); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(t0)
		for _, err := range errs {
			if err != nil {
				return 0, 0, err
			}
		}
		return elapsed, observed.Load(), nil
	}

	fmt.Printf("client experiment — %d ODs over %d shards, %d goroutines x %d proves, Zipf(s=%.1f) shard popularity\n",
		shards*chains*chainLen, shards, goroutines, provesPerG, zipfS)

	direct, err := odclient.New(ts.URL,
		odclient.WithHTTPClient(ts.Client()),
		odclient.WithCoalescing(false))
	if err != nil {
		return nil, err
	}
	defer direct.Close()
	directTime, directReqs, err := run(direct)
	if err != nil {
		return nil, err
	}

	// The full client: coalescing, a 2ms/128-statement pipeline window and
	// a generation-keyed cache with a 250ms staleness bound — stale-view
	// /generation polls land in the same observed request count, so the
	// reduction is honest about the cache's revalidation traffic.
	coalesced, err := odclient.New(ts.URL,
		odclient.WithHTTPClient(ts.Client()),
		odclient.WithPipelining(2*time.Millisecond, 128),
		odclient.WithCache(4096, 250*time.Millisecond))
	if err != nil {
		return nil, err
	}
	defer coalesced.Close()
	coalescedTime, coalescedReqs, err := run(coalesced)
	if err != nil {
		return nil, err
	}

	proves := float64(goroutines * provesPerG)
	reduction := float64(directReqs) / float64(max(coalescedReqs, 1))
	st := coalesced.Stats()
	fmt.Printf("%12s %14s %16s %14s\n", "", "total", "proves/sec", "requests")
	fmt.Printf("%12s %14v %16.0f %14d\n", "direct", directTime, proves/directTime.Seconds(), directReqs)
	fmt.Printf("%12s %14v %16.0f %14d\n", "coalesced", coalescedTime, proves/coalescedTime.Seconds(), coalescedReqs)
	fmt.Printf("request reduction: %.1fx (cache hits %d, coalesce joins %d, %d batches of %d statements)\n",
		reduction, st.CacheHits, st.CoalesceJoins, st.PipelineBatches, st.PipelineStatements)
	if reduction < 2 {
		// A warning, not an error: CI evaluates the JSON, humans the text.
		fmt.Printf("WARNING: request reduction below the expected 2x floor\n")
	}

	return &benchResult{
		Experiment: "client",
		Params: map[string]any{
			"ods": shards * chains * chainLen, "shards": shards,
			"goroutines": goroutines, "proves": int(proves),
			"pool_per_shard": poolSize, "zipf_s": zipfS, "seed": seed,
		},
		Metrics: []metric{
			{Name: "direct/total", Value: float64(directTime.Nanoseconds()), Unit: "ns"},
			{Name: "coalesced/total", Value: float64(coalescedTime.Nanoseconds()), Unit: "ns"},
			{Name: "direct/proves_per_sec", Value: proves / directTime.Seconds(), Unit: "1/s"},
			{Name: "coalesced/proves_per_sec", Value: proves / coalescedTime.Seconds(), Unit: "1/s"},
			{Name: "direct/requests", Value: float64(directReqs), Unit: "count"},
			{Name: "coalesced/requests", Value: float64(coalescedReqs), Unit: "count"},
			{Name: "request_reduction", Value: reduction, Unit: "x"},
			{Name: "cache_hits", Value: float64(st.CacheHits), Unit: "count"},
			{Name: "coalesce_joins", Value: float64(st.CoalesceJoins), Unit: "count"},
			{Name: "pipeline_batches", Value: float64(st.PipelineBatches), Unit: "count"},
		},
	}, nil
}

// runRecovery prices what background WAL compaction buys at restart. Two
// data dirs take the identical churn-heavy workload — a base constraint set
// plus thousands of paired declare/remove toggles, the burst-then-retract
// shape set-based OD discovery emits — ending in the identical catalog
// state. One dir never compacts, so recovery replays the whole toggle
// history; the other compacts on cadence (plus one final pass and a
// realistic uncompacted tail), so recovery loads a small snapshot and a
// short suffix. The recovery-time ratio is the experiment; CI gates a 2x
// floor. Mutation-latency percentiles during the compacted run ride along:
// with snapshots off the apply path, writers must not feel the compactor.
func runRecovery() (*benchResult, error) {
	const (
		baseODs  = 64   // steady-state declared chain
		toggles  = 1500 // declare/remove pairs appended after the base set
		togSize  = 8    // ODs per toggle record
		cadence  = 256  // compaction nudge cadence (records) on the compacted dir
		segBytes = 64 << 10
		tail     = 32 // records left uncompacted after the final pass
		reps     = 3  // recovery timings per dir; min wins (cold cache noise)
	)

	// populate drives the identical workload into a fresh router over dir
	// and returns per-mutation wall-clock latencies.
	populate := func(dir string, opt store.Options, compactFinal bool) ([]time.Duration, error) {
		rt, err := router.Open(router.Options{DataDir: dir, Store: opt})
		if err != nil {
			return nil, err
		}
		defer rt.Close()
		lat := make([]time.Duration, 0, 2*toggles+1)
		mutate := func(remove bool, stmts []core.OD) error {
			t0 := time.Now()
			if remove {
				_, err = rt.Remove("", stmts)
			} else {
				_, err = rt.Declare("", stmts)
			}
			lat = append(lat, time.Since(t0))
			return err
		}
		// Disjoint pairs, not a chain: the experiment prices log length at
		// recovery, and a chain's quadratic closure would drown that signal
		// in closure maintenance on both sides of the comparison.
		base := make([]core.OD, baseODs)
		for i := range base {
			base[i] = core.NewOD(
				core.List{core.Attribute(fmt.Sprintf("b%d", i))},
				core.List{core.Attribute(fmt.Sprintf("c%d", i))})
		}
		if err := mutate(false, base); err != nil {
			return nil, err
		}
		for i := 0; i < toggles; i++ {
			batch := make([]core.OD, togSize)
			for j := range batch {
				batch[j] = core.NewOD(
					core.List{core.Attribute(fmt.Sprintf("t%d_%d", i, j))},
					core.List{core.Attribute(fmt.Sprintf("u%d_%d", i, j))})
			}
			if err := mutate(false, batch); err != nil {
				return nil, err
			}
			if err := mutate(true, batch); err != nil {
				return nil, err
			}
		}
		if compactFinal {
			if _, err := rt.SnapshotAll(); err != nil {
				return nil, err
			}
			// A realistic steady-state tail: the records that landed since
			// the last compaction and still await the next one.
			for i := 0; i < tail/2; i++ {
				batch := []core.OD{core.NewOD(
					core.List{core.Attribute(fmt.Sprintf("z%d", i))},
					core.List{core.Attribute(fmt.Sprintf("w%d", i))})}
				if err := mutate(false, batch); err != nil {
					return nil, err
				}
				if err := mutate(true, batch); err != nil {
					return nil, err
				}
			}
		}
		return lat, nil
	}

	// recoverTime opens the populated dir and clocks full recovery —
	// snapshot load, WAL replay across segments, catalog rebuild.
	recoverTime := func(dir string) (time.Duration, int, error) {
		best := time.Duration(0)
		replayed := 0
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			rt, err := router.Open(router.Options{DataDir: dir})
			if err != nil {
				return 0, 0, err
			}
			d := time.Since(t0)
			replayed = rt.Stats()[router.DefaultShard].Store.Recovery.Replayed
			rt.Close()
			if r == 0 || d < best {
				best = d
			}
		}
		return best, replayed, nil
	}

	tmp, err := os.MkdirTemp("", "odbench-recovery-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	records := 1 + 2*toggles

	fmt.Printf("recovery experiment — %d base ODs, %d toggle records of %d ODs, cadence %d\n",
		baseODs, 2*toggles, togSize, cadence)

	uncompactedDir := filepath.Join(tmp, "uncompacted")
	if _, err := populate(uncompactedDir, store.Options{SegmentBytes: segBytes}, false); err != nil {
		return nil, err
	}
	uncompactedTime, uncompactedReplay, err := recoverTime(uncompactedDir)
	if err != nil {
		return nil, err
	}

	compactedDir := filepath.Join(tmp, "compacted")
	lat, err := populate(compactedDir,
		store.Options{SegmentBytes: segBytes, SnapshotEvery: cadence}, true)
	if err != nil {
		return nil, err
	}
	compactedTime, compactedReplay, err := recoverTime(compactedDir)
	if err != nil {
		return nil, err
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := func(q float64) time.Duration { return lat[min(int(q*float64(len(lat))), len(lat)-1)] }
	speedup := float64(uncompactedTime) / float64(max(compactedTime, 1))

	fmt.Printf("%14s %14s %16s\n", "", "recovery", "records replayed")
	fmt.Printf("%14s %14v %16d\n", "uncompacted", uncompactedTime, uncompactedReplay)
	fmt.Printf("%14s %14v %16d\n", "compacted", compactedTime, compactedReplay)
	fmt.Printf("recovery speedup: %.1fx\n", speedup)
	fmt.Printf("mutation latency with compactions firing: p50 %v, p99 %v, max %v\n",
		p(0.50), p(0.99), lat[len(lat)-1])
	if speedup < 2 {
		// A warning, not an error: CI evaluates the JSON, humans the text.
		fmt.Printf("WARNING: recovery speedup below the expected 2x floor\n")
	}

	return &benchResult{
		Experiment: "recovery",
		Params: map[string]any{
			"base_ods": baseODs, "toggle_records": 2 * toggles, "toggle_size": togSize,
			"records": records, "cadence": cadence, "segment_bytes": segBytes, "tail": tail,
		},
		Metrics: []metric{
			{Name: "uncompacted/recovery", Value: float64(uncompactedTime.Nanoseconds()), Unit: "ns"},
			{Name: "uncompacted/replayed", Value: float64(uncompactedReplay), Unit: "count"},
			{Name: "compacted/recovery", Value: float64(compactedTime.Nanoseconds()), Unit: "ns"},
			{Name: "compacted/replayed", Value: float64(compactedReplay), Unit: "count"},
			{Name: "recovery_speedup", Value: speedup, Unit: "x"},
			{Name: "mutation_p50", Value: float64(p(0.50).Nanoseconds()), Unit: "ns"},
			{Name: "mutation_p99", Value: float64(p(0.99).Nanoseconds()), Unit: "ns"},
			{Name: "mutation_max", Value: float64(lat[len(lat)-1].Nanoseconds()), Unit: "ns"},
		},
	}, nil
}

// runSaturation drives an instrumented daemon to its knee and past it, in two
// phases, against a shared bounded prover pool and compaction-lag admission
// control — the two mechanisms that keep an overloaded odserve degrading
// predictably instead of collapsing.
//
// Phase 1 (latency ramp): closed-loop prove traffic at rising concurrency
// (1, 2, pool-capacity, 2x pool-capacity goroutines), every question a fresh
// refuted span reversal so each prove runs a real pattern search through the
// shared pool. Per-stage p50/p99 come from per-request wall clocks. The gate
// is knee_p99_inflation — p99 at pool-capacity concurrency over p99 at
// concurrency 1: with one bounded pool, queueing grows latency by roughly the
// concurrency ratio; an unbounded goroutine explosion or a pool leak blows
// far past it. pool_peak <= pool_capacity rides along as the deterministic
// form of the same claim.
//
// Phase 2 (load shedding): the "hot" shard's compactor is pinned via the
// store's stall hook while one-record WAL segments pile up; declares must
// start bouncing with 429 once the lag threshold is crossed, while prove
// traffic keeps answering 200 throughout. Resuming the compactor and
// snapshotting must re-admit declares — shedding is a state, not a latch.
func runSaturation(seed int64) (*benchResult, error) {
	const (
		poolCap        = 4
		chainsPerStage = 16
		chainAttrs     = 10 // per-chain universe: wide enough that searches fan out through the pool
		minSpan        = 5
		provesPerStage = 128
		backpressureAt = 4  // sealed-segment lag that trips admission control
		floodMax       = 64 // declare attempts against the pinned compactor
	)
	rng := rand.New(rand.NewSource(seed))
	stages := []int{1, 2, poolCap, 2 * poolCap}

	tmp, err := os.MkdirTemp("", "odbench-saturation-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	// Wired exactly like cmd/odserve: telemetry first, hooks into every
	// layer, collectors installed over the opened router.
	tel := server.NewTelemetry()
	pool := prover.NewPool(poolCap)
	rt, err := router.Open(router.Options{
		DataDir: tmp,
		Store: store.Options{
			Fsync:          false,
			SegmentRecords: 1, // every record seals a segment: lag == records
			SnapshotEvery:  4,
			Telemetry:      tel.StoreTelemetry(),
		},
		Catalog:              append([]catalog.Option{catalog.WithWorkers(poolCap)}, tel.CatalogOptions(pool)...),
		BackpressureSegments: backpressureAt,
		Telemetry:            tel.RouterTelemetry(),
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	tel.ObserveRouter(rt, pool)
	ts := httptest.NewServer(server.New(rt, server.WithTelemetry(tel)))
	defer ts.Close()
	client := ts.Client()

	post := func(path string, body map[string]any) (int, error) {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, err
		}
		return resp.StatusCode, nil
	}

	// Per-stage schema: disjoint chains s<stage>_c<chain>_a0 ↦ … and a
	// question pool of distinct FD-form spans [a_lo] ↦ [a_lo, a_hi] — each is
	// implied through the chain but only the pattern search can say so
	// (closure membership cannot, Theorem 13's FD detour), and implied
	// verdicts have no counterexample witness the negative closure could
	// generalize, so every distinct question pays a genuine search.
	attr := func(stage, c, i int) string { return fmt.Sprintf("s%d_c%d_a%d", stage, c, i) }
	questions := make(map[int][]string)
	for si, conc := range stages {
		var decl []string
		for c := 0; c < chainsPerStage; c++ {
			for i := 0; i+1 < chainAttrs; i++ {
				decl = append(decl, fmt.Sprintf("[%s] -> [%s]", attr(si, c, i), attr(si, c, i+1)))
			}
			for lo := 0; lo < chainAttrs; lo++ {
				for hi := lo + minSpan; hi < chainAttrs; hi++ {
					questions[si] = append(questions[si],
						fmt.Sprintf("[%s] -> [%s, %s]", attr(si, c, lo), attr(si, c, lo), attr(si, c, hi)))
				}
			}
		}
		schema := fmt.Sprintf("stage%d", si)
		if code, err := post("/ods", map[string]any{"schema": schema, "statements": decl}); err != nil || code != 200 {
			if err == nil {
				err = fmt.Errorf("status %d", code)
			}
			return nil, fmt.Errorf("populate stage %d (conc %d): %w", si, conc, err)
		}
		rng.Shuffle(len(questions[si]), func(i, j int) {
			questions[si][i], questions[si][j] = questions[si][j], questions[si][i]
		})
		if len(questions[si]) < provesPerStage {
			return nil, fmt.Errorf("stage %d question pool too small: %d", si, len(questions[si]))
		}
	}

	prove := func(schema, stmt string) (time.Duration, error) {
		t0 := time.Now()
		code, err := post("/prove", map[string]any{"schema": schema, "statement": stmt})
		if err != nil {
			return 0, err
		}
		if code != 200 {
			return 0, fmt.Errorf("prove: status %d", code)
		}
		return time.Since(t0), nil
	}

	fmt.Printf("saturation experiment — shared pool capacity %d, %d fresh search questions/stage, backpressure at %d segments\n",
		poolCap, provesPerStage, backpressureAt)
	fmt.Printf("%12s %12s %12s %14s\n", "concurrency", "p50", "p99", "proves/sec")

	res := &benchResult{
		Experiment: "saturation",
		Params: map[string]any{
			"pool_capacity": poolCap, "stages": stages, "proves_per_stage": provesPerStage,
			"chain_attrs": chainAttrs, "chains_per_stage": chainsPerStage,
			"backpressure_segments": backpressureAt, "seed": seed,
		},
	}
	p99s := make(map[int]time.Duration)
	for si, conc := range stages {
		schema := fmt.Sprintf("stage%d", si)
		lat := make([]time.Duration, provesPerStage)
		var next atomic.Int64
		var wg sync.WaitGroup
		errs := make([]error, conc)
		t0 := time.Now()
		for g := 0; g < conc; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= provesPerStage {
						return
					}
					d, err := prove(schema, questions[si][i])
					if err != nil {
						errs[g] = err
						return
					}
					lat[i] = d
				}
			}(g)
		}
		wg.Wait()
		total := time.Since(t0)
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("stage conc=%d: %w", conc, err)
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(q float64) time.Duration { return lat[min(int(q*float64(len(lat))), len(lat)-1)] }
		p99s[conc] = pct(0.99)
		rate := float64(provesPerStage) / total.Seconds()
		fmt.Printf("%12d %12v %12v %14.0f\n", conc, pct(0.50), pct(0.99), rate)
		res.Metrics = append(res.Metrics,
			metric{Name: fmt.Sprintf("conc=%d/p50", conc), Value: float64(pct(0.50).Nanoseconds()), Unit: "ns"},
			metric{Name: fmt.Sprintf("conc=%d/p99", conc), Value: float64(pct(0.99).Nanoseconds()), Unit: "ns"},
			metric{Name: fmt.Sprintf("conc=%d/proves_per_sec", conc), Value: rate, Unit: "1/s"},
		)
	}
	ps := pool.Stats()
	kneeInflation := float64(p99s[poolCap]) / float64(max(p99s[1], 1))
	satInflation := float64(p99s[2*poolCap]) / float64(max(p99s[1], 1))
	fmt.Printf("pool: capacity %d, peak %d, acquired %d, starved %d\n",
		ps.Capacity, ps.Peak, ps.Acquired, ps.Starved)
	fmt.Printf("p99 inflation: %.1fx at the knee (conc=%d), %.1fx saturated (conc=%d)\n",
		kneeInflation, poolCap, satInflation, 2*poolCap)
	if ps.Peak > int64(ps.Capacity) {
		return nil, fmt.Errorf("pool peak %d exceeded capacity %d", ps.Peak, ps.Capacity)
	}
	if kneeInflation > 16 {
		// A warning, not an error: CI evaluates the JSON, humans the text.
		fmt.Printf("WARNING: knee p99 inflation above the expected 16x bound\n")
	}

	// Phase 2: pin the hot shard's compactor and flood declares. The first
	// declare materializes the shard; every subsequent accepted declare seals
	// one segment, so admission control must trip within backpressureAt+1
	// accepts and shed the rest of the flood.
	if code, err := post("/ods", map[string]any{"schema": "hot", "statements": []string{"[h0] -> [k0]"}}); err != nil || code != 200 {
		if err == nil {
			err = fmt.Errorf("status %d", code)
		}
		return nil, fmt.Errorf("hot shard declare: %w", err)
	}
	resume := rt.ShardStore("hot").StallCompaction()
	accepted, rejected := 0, 0
	floodStop := make(chan struct{})
	var proveWG sync.WaitGroup
	var floodProveErr error
	var floodLat []time.Duration
	proveWG.Add(1)
	go func() {
		// Reads ride through the write flood untouched: re-asking stage
		// questions (negative-closure hits now) must keep answering 200.
		defer proveWG.Done()
		for i := 0; ; i++ {
			select {
			case <-floodStop:
				return
			default:
			}
			d, err := prove("stage0", questions[0][i%provesPerStage])
			if err != nil {
				floodProveErr = err
				return
			}
			floodLat = append(floodLat, d)
		}
	}()
	for i := 1; i <= floodMax; i++ {
		code, err := post("/ods", map[string]any{
			"schema": "hot", "statements": []string{fmt.Sprintf("[h%d] -> [k%d]", i, i)},
		})
		if err != nil {
			return nil, err
		}
		switch code {
		case 200:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			return nil, fmt.Errorf("flood declare %d: status %d", i, code)
		}
	}
	close(floodStop)
	proveWG.Wait()
	if floodProveErr != nil {
		return nil, fmt.Errorf("prove during flood: %w", floodProveErr)
	}
	sort.Slice(floodLat, func(i, j int) bool { return floodLat[i] < floodLat[j] })
	floodP99 := time.Duration(0)
	if len(floodLat) > 0 {
		floodP99 = floodLat[min(int(0.99*float64(len(floodLat))), len(floodLat)-1)]
	}

	// Recovery: un-pin, compact, and the shard must admit writes again.
	resume()
	if code, err := post("/snapshot", map[string]any{"schema": "hot"}); err != nil || code != 200 {
		if err == nil {
			err = fmt.Errorf("status %d", code)
		}
		return nil, fmt.Errorf("snapshot after resume: %w", err)
	}
	recovered := 0
	if code, err := post("/ods", map[string]any{"schema": "hot", "statements": []string{"[recov] -> [ered]"}}); err != nil {
		return nil, err
	} else if code == 200 {
		recovered = 1
	}

	fmt.Printf("load shedding: %d accepted, %d rejected (429) of %d declares against a pinned compactor\n",
		accepted, rejected, floodMax)
	fmt.Printf("proves during the flood: %d answered, p99 %v; shard re-admitted writes after compaction: %v\n",
		len(floodLat), floodP99, recovered == 1)
	if rejected == 0 {
		fmt.Printf("WARNING: no 429s — admission control never tripped\n")
	}

	// The registry must still serve a strictly parseable exposition after
	// the whole run — the bench doubles as an end-to-end scrape check.
	sresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	fams, err := metrics.ParseText(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("post-run /metrics failed to parse: %w", err)
	}

	res.Metrics = append(res.Metrics,
		metric{Name: "knee_p99_inflation", Value: kneeInflation, Unit: "x"},
		metric{Name: "saturated_p99_inflation", Value: satInflation, Unit: "x"},
		metric{Name: "pool_capacity", Value: float64(ps.Capacity), Unit: "count"},
		metric{Name: "pool_peak", Value: float64(ps.Peak), Unit: "count"},
		metric{Name: "pool_acquired", Value: float64(ps.Acquired), Unit: "count"},
		metric{Name: "pool_starved", Value: float64(ps.Starved), Unit: "count"},
		metric{Name: "shed_accepted", Value: float64(accepted), Unit: "count"},
		metric{Name: "shed_rejected", Value: float64(rejected), Unit: "count"},
		metric{Name: "flood_proves", Value: float64(len(floodLat)), Unit: "count"},
		metric{Name: "flood_prove_p99", Value: float64(floodP99.Nanoseconds()), Unit: "ns"},
		metric{Name: "recovered", Value: float64(recovered), Unit: "count"},
		metric{Name: "metric_families", Value: float64(len(fams)), Unit: "count"},
	)
	return res, nil
}

// runDiscover prices the parallel set-based discovery pipeline against the
// honest sequential baseline on two instances: the generated TPC-DS-style
// date dimension (the workload the paper's prototype would mine its check
// constraints from) and a random relation. Three runs per instance: the
// sequential Discover, the pipeline at one worker, and the pipeline at full
// parallelism. The pipeline's pruning counters are scheduler-independent —
// identical across worker counts, which the bench asserts — so CI gates the
// data-check reduction ratio, while wall-clock speedup is reported for
// humans. The reduction comes from two levers the baseline lacks:
// refutation propagation through lexicographic prefixes (a refuted
// candidate poisons its lattice extensions without touching data) and the
// sorted-partition cache (one sort per left-hand context answers every
// right-hand candidate over it).
func runDiscover(seed int64) (*benchResult, error) {
	cfg := warehouse.DefaultConfig()
	cfg.Days = 365
	cfg.FactRows = 0 // discovery mines the dimension; no fact rows needed
	cfg.Seed = seed
	w, err := warehouse.Generate(cfg)
	if err != nil {
		return nil, err
	}
	whRel, err := w.DateDimRelation()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	genRel := core.RandRelation(rng, core.L("a", "b", "c", "d", "e", "f"), 4000, 6)

	parallelWorkers := runtime.GOMAXPROCS(0)
	if parallelWorkers < 4 {
		parallelWorkers = 4
	}
	workloads := []struct {
		name string
		rel  *core.Relation
		opts discover.Options
	}{
		{"warehouse", whRel, discover.Options{MaxLHS: 2, MaxRHS: 3}},
		{"generated", genRel, discover.Options{MaxLHS: 2, MaxRHS: 2}},
	}

	fmt.Printf("discover experiment — sequential baseline vs level-wise pipeline, %d workers (seed %d)\n",
		parallelWorkers, seed)
	res := &benchResult{
		Experiment: "discover",
		Params: map[string]any{
			"warehouse_days": cfg.Days, "warehouse_bounds": "lhs<=2,rhs<=3",
			"generated_rows": genRel.Len(), "generated_bounds": "lhs<=2,rhs<=2",
			"workers": parallelWorkers, "seed": seed,
		},
	}
	for _, wl := range workloads {
		t0 := time.Now()
		naive, err := discover.Discover(wl.rel, wl.opts)
		if err != nil {
			return nil, err
		}
		naiveTime := time.Since(t0)

		one, err := discover.Pipeline(context.Background(), wl.rel,
			discover.PipelineOptions{Options: wl.opts, Workers: 1})
		if err != nil {
			return nil, err
		}
		t1 := time.Now()
		par, err := discover.Pipeline(context.Background(), wl.rel,
			discover.PipelineOptions{Options: wl.opts, Workers: parallelWorkers})
		if err != nil {
			return nil, err
		}
		parTime := time.Since(t1)
		if par.Stats != one.Stats {
			return nil, fmt.Errorf("discover %s: pipeline stats depend on the schedule:\n1 worker: %+v\n%d workers: %+v",
				wl.name, one.Stats, parallelWorkers, par.Stats)
		}

		st := par.Stats
		checkReduction := float64(naive.DataChecks) / float64(max(st.DataChecks, 1))
		rowsReduction := float64(naive.RowsScanned) / float64(max(int64(st.RowsScanned), 1))
		speedup := float64(naiveTime) / float64(max(parTime, 1))
		hitRate := float64(st.CacheHits) / float64(max(st.CacheHits+st.CacheMisses, 1))

		fmt.Printf("\n%s: %d rows x %d attrs, %d candidates\n",
			wl.name, wl.rel.Len(), len(wl.rel.Attrs()), naive.Candidates)
		fmt.Printf("%12s %14s %12s %14s %10s\n", "", "total", "checks", "rows scanned", "ODs")
		fmt.Printf("%12s %14v %12d %14d %10d\n", "naive", naiveTime, naive.DataChecks, naive.RowsScanned, len(naive.ODs))
		fmt.Printf("%12s %14v %12d %14d %10d\n", "pipeline", parTime, st.DataChecks, st.RowsScanned, len(par.ODs))
		fmt.Printf("reduction: %.1fx data checks, %.1fx rows scanned; speedup %.1fx wall clock\n",
			checkReduction, rowsReduction, speedup)
		fmt.Printf("pruning: %d closure, %d refutation; partition cache %.0f%% hits (%d/%d contexts sorted)\n",
			st.ClosurePruned, st.RefutationPruned, 100*hitRate, st.CacheMisses, st.CacheHits+st.CacheMisses)
		if wl.name == "warehouse" && checkReduction < 4 {
			// A warning, not an error: CI gates the JSON at a lower floor.
			fmt.Printf("WARNING: data-check reduction below the expected 4x floor\n")
		}

		res.Metrics = append(res.Metrics,
			metric{Name: wl.name + "/naive/total", Value: float64(naiveTime.Nanoseconds()), Unit: "ns"},
			metric{Name: wl.name + "/pipeline/total", Value: float64(parTime.Nanoseconds()), Unit: "ns"},
			metric{Name: wl.name + "/naive/data_checks", Value: float64(naive.DataChecks), Unit: "count"},
			metric{Name: wl.name + "/pipeline/data_checks", Value: float64(st.DataChecks), Unit: "count"},
			metric{Name: wl.name + "/naive/rows_scanned", Value: float64(naive.RowsScanned), Unit: "count"},
			metric{Name: wl.name + "/pipeline/rows_scanned", Value: float64(st.RowsScanned), Unit: "count"},
			metric{Name: wl.name + "/datacheck_reduction", Value: checkReduction, Unit: "x"},
			metric{Name: wl.name + "/rows_reduction", Value: rowsReduction, Unit: "x"},
			metric{Name: wl.name + "/speedup", Value: speedup, Unit: "x"},
			metric{Name: wl.name + "/cache_hit_rate", Value: hitRate, Unit: "ratio"},
			metric{Name: wl.name + "/accepted_ods", Value: float64(len(par.ODs)), Unit: "count"},
		)
	}
	return res, nil
}

// runCatalog is the repeated-query workload behind odserve: the same
// implication questions asked over and over against an unchanged constraint
// set. Cold pays the full decision procedure per question (a fresh prover
// each time, as one-shot library calls did); memoized answers from the
// catalog's verdict memo after the first miss.
func runCatalog() (*benchResult, error) {
	const (
		attrs   = 10
		repeats = 200
	)
	m, implied, refuted := proverInstance(attrs)
	// The FD-form query must run the pattern search (closure membership
	// cannot answer it), making it representative of the expensive path.
	fdForm := implied.FDForm()
	queries := []core.OD{fdForm, refuted}

	fmt.Printf("catalog memoization — %d-attr chain, %d repeats of %d distinct queries\n",
		attrs, repeats, len(queries))

	t0 := time.Now()
	for i := 0; i < repeats; i++ {
		for _, q := range queries {
			p := prover.New(m)
			if _, err := p.Implies(q); err != nil {
				return nil, err
			}
		}
	}
	cold := time.Since(t0)

	cat := catalog.New()
	cat.Add(m...)
	t1 := time.Now()
	for i := 0; i < repeats; i++ {
		for _, q := range queries {
			if _, err := cat.Implies(q); err != nil {
				return nil, err
			}
		}
	}
	memoized := time.Since(t1)

	n := float64(repeats * len(queries))
	speedup := float64(cold) / float64(memoized)
	st := cat.Stats()
	fmt.Printf("%12s %14s %14s\n", "", "total", "per query")
	fmt.Printf("%12s %14v %14v\n", "cold", cold, cold/time.Duration(n))
	fmt.Printf("%12s %14v %14v\n", "memoized", memoized, memoized/time.Duration(n))
	fmt.Printf("speedup: %.0fx (memo: %d hits, %d misses)\n", speedup, st.Memo.Hits, st.Memo.Misses)
	if speedup < 10 {
		// A warning, not an error: wall-clock ratios on loaded machines can
		// absorb scheduler stalls, and a measurement must not masquerade as
		// a correctness failure. The steady-state ratio is >100x.
		fmt.Printf("WARNING: speedup below the expected 10x floor\n")
	}

	return &benchResult{
		Experiment: "catalog",
		Params:     map[string]any{"attrs": attrs, "repeats": repeats, "queries": len(queries)},
		Metrics: []metric{
			{Name: "cold/total", Value: float64(cold.Nanoseconds()), Unit: "ns"},
			{Name: "memoized/total", Value: float64(memoized.Nanoseconds()), Unit: "ns"},
			{Name: "cold/per_query", Value: float64(cold.Nanoseconds()) / n, Unit: "ns"},
			{Name: "memoized/per_query", Value: float64(memoized.Nanoseconds()) / n, Unit: "ns"},
			{Name: "speedup", Value: speedup, Unit: "x"},
			{Name: "memo_hits", Value: float64(st.Memo.Hits), Unit: "count"},
			{Name: "memo_misses", Value: float64(st.Memo.Misses), Unit: "count"},
		},
	}, nil
}

// capacityGate models one server instance's capacity: at most one request
// in service at a time, each holding the slot for a fixed service time.
// Replication traffic (/segments*) bypasses the gate — the capacity being
// modeled is query service, and shipping bytes is not a query.
//
// The gate is what makes read scaling measurable on any machine. On a
// many-core host three real processes would show scaling, but on the
// single-core CI runner they merely time-slice one CPU and the experiment
// would measure the scheduler. With an explicit per-server capacity the
// measured quantity is the one the replication layer exists to raise:
// how much aggregate query capacity the client's replica fan-out reaches.
type capacityGate struct {
	h       http.Handler
	slot    chan struct{}
	service time.Duration
}

func newCapacityGate(h http.Handler, service time.Duration) *capacityGate {
	return &capacityGate{h: h, slot: make(chan struct{}, 1), service: service}
}

func (g *capacityGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/segments") {
		g.slot <- struct{}{}
		time.Sleep(g.service)
		defer func() { <-g.slot }()
	}
	g.h.ServeHTTP(w, r)
}

// runReplica measures segment-shipping read scaling: one leader and two
// followers tailing it over real HTTP segment fetches, each server instance
// behind a capacityGate (one request in service, fixed service time). The
// headline metric, read_scaling, is 2-follower aggregate prove throughput
// over leader-only throughput from the same client — the number the
// replication layer exists to raise (floor: 1.5x, gated in CI).
func runReplica(seed int64) (*benchResult, error) {
	const (
		chains      = 24
		chainLen    = 8
		poolSize    = 256
		goroutines  = 16
		provesPerG  = 400
		serviceTime = 500 * time.Microsecond
	)
	rng := rand.New(rand.NewSource(seed))

	tmp, err := os.MkdirTemp("", "odbench-replica-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	leaderRT, err := router.Open(router.Options{DataDir: filepath.Join(tmp, "leader")})
	if err != nil {
		return nil, err
	}
	defer leaderRT.Close()
	lts := httptest.NewServer(newCapacityGate(server.New(leaderRT), serviceTime))
	defer lts.Close()

	// Populate: disjoint transitive chains on the default shard.
	attr := func(c, i int) string { return fmt.Sprintf("c%d_a%d", c, i) }
	seedClient, err := odclient.New(lts.URL)
	if err != nil {
		return nil, err
	}
	var decl []string
	for c := 0; c < chains; c++ {
		for i := 0; i < chainLen; i++ {
			decl = append(decl, fmt.Sprintf("[%s] -> [%s]", attr(c, i), attr(c, i+1)))
		}
	}
	if _, err := seedClient.Mutate(context.Background(), "", decl, nil); err != nil {
		seedClient.Close()
		return nil, fmt.Errorf("populate leader: %w", err)
	}
	seedClient.Close()

	// Two followers: real follower routers fed by real tailers over the
	// leader's /segments endpoints, served behind their own gates.
	var followerURLs []string
	for i := 0; i < 2; i++ {
		frt, err := router.Open(router.Options{
			DataDir:  filepath.Join(tmp, fmt.Sprintf("follower%d", i)),
			Follower: true,
		})
		if err != nil {
			return nil, err
		}
		defer frt.Close()
		tailer, err := replica.New(replica.Options{
			Leader:       lts.URL,
			Router:       frt,
			PollInterval: 5 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = tailer.Sync(ctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("follower %d catch-up: %w", i, err)
		}
		tailer.Start()
		defer tailer.Close()
		fts := httptest.NewServer(newCapacityGate(server.New(frt, server.WithLeader(lts.URL)), serviceTime))
		defer fts.Close()
		followerURLs = append(followerURLs, fts.URL)
	}

	// Statement pool: implied chain spans plus refuted reversals, shared by
	// both measurement phases so the workloads are identical.
	pool := make([]string, poolSize)
	for i := range pool {
		c := rng.Intn(chains)
		lo := rng.Intn(chainLen)
		hi := lo + 1 + rng.Intn(chainLen-lo)
		if i%4 == 3 {
			pool[i] = fmt.Sprintf("[%s] -> [%s]", attr(c, hi), attr(c, lo))
		} else {
			pool[i] = fmt.Sprintf("[%s] -> [%s]", attr(c, lo), attr(c, hi))
		}
	}
	workload := make([]string, goroutines*provesPerG)
	for i := range workload {
		workload[i] = pool[rng.Intn(len(pool))]
	}

	// measure drives the fixed workload through one client and reports
	// proves/sec. Coalescing stays off: every prove is a real server round
	// trip through a capacity gate, which is the capacity being compared.
	measure := func(opts ...odclient.Option) (float64, odclient.Stats, error) {
		c, err := odclient.New(lts.URL, append([]odclient.Option{odclient.WithCoalescing(false)}, opts...)...)
		if err != nil {
			return 0, odclient.Stats{}, err
		}
		defer c.Close()
		// Warm every server's prove memo before timing: twice around the
		// pool so round-robin replica routing touches each statement on
		// every server it can land on.
		for pass := 0; pass < 2; pass++ {
			for _, stmt := range pool {
				if _, err := c.Prove(context.Background(), "", stmt); err != nil {
					return 0, odclient.Stats{}, err
				}
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, goroutines)
		t0 := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g * provesPerG; i < (g+1)*provesPerG; i++ {
					if _, err := c.Prove(context.Background(), "", workload[i]); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(t0)
		for _, err := range errs {
			if err != nil {
				return 0, odclient.Stats{}, err
			}
		}
		return float64(len(workload)) / elapsed.Seconds(), c.Stats(), nil
	}

	leaderTput, _, err := measure()
	if err != nil {
		return nil, fmt.Errorf("leader-only phase: %w", err)
	}
	replicaTput, rstats, err := measure(odclient.WithReplicas(followerURLs[0], followerURLs[1]))
	if err != nil {
		return nil, fmt.Errorf("replica phase: %w", err)
	}
	if rstats.ReplicaReads > 0 && rstats.ReplicaFailovers*10 > rstats.ReplicaReads {
		return nil, fmt.Errorf("replica phase fell over to the leader %d/%d reads — followers are not serving",
			rstats.ReplicaFailovers, rstats.ReplicaReads)
	}
	scaling := replicaTput / leaderTput

	fmt.Printf("replica experiment — 1 leader + 2 followers, %v service time per server, %d ODs, %d proves/phase\n",
		serviceTime, chains*chainLen, len(workload))
	fmt.Printf("%-32s %12.0f proves/s\n", "leader only", leaderTput)
	fmt.Printf("%-32s %12.0f proves/s\n", "2 followers (aggregate)", replicaTput)
	fmt.Printf("%-32s %12.2fx\n", "read scaling", scaling)

	return &benchResult{
		Experiment: "replica",
		Params: map[string]any{
			"followers": 2, "service_time_us": serviceTime.Microseconds(),
			"per_server_concurrency": 1, "ods": chains * chainLen,
			"goroutines": goroutines, "proves": len(workload), "seed": seed,
		},
		Metrics: []metric{
			{Name: "leader_proves_per_sec", Value: leaderTput, Unit: "proves/s"},
			{Name: "replica_aggregate_proves_per_sec", Value: replicaTput, Unit: "proves/s"},
			{Name: "read_scaling", Value: scaling, Unit: "x"},
		},
	}, nil
}
