package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCatalogExperimentJSON runs the memoization experiment end to end and
// checks the machine-readable output. The speedup must be present and
// positive; its magnitude (>100x on an idle machine) is reported, not
// asserted, so a loaded CI runner cannot turn a measurement into a failure.
func TestCatalogExperimentJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "catalog", "-json", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "BENCH_catalog.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Experiment string `json:"experiment"`
		Metrics    []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
			Unit  string  `json:"unit"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("BENCH_catalog.json is not valid JSON: %v", err)
	}
	if res.Experiment != "catalog" {
		t.Errorf("experiment = %q", res.Experiment)
	}
	byName := map[string]float64{}
	for _, m := range res.Metrics {
		byName[m.Name] = m.Value
	}
	for _, want := range []string{"cold/total", "memoized/total", "speedup", "memo_hits"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("metric %q missing from %v", want, byName)
		}
	}
	if byName["speedup"] <= 0 {
		t.Errorf("speedup = %.1f, want positive", byName["speedup"])
	}
}

// TestBatchExperimentJSON runs the batched-prove experiment end to end: a
// real HTTP daemon over an 8-shard router, Zipf-distributed prove traffic,
// single-statement versus /prove/batch. The speedup must be present and
// positive; the ≥5x floor is reported by the experiment itself (and gated in
// CI), not asserted here, so a loaded runner cannot turn a measurement into
// a test failure.
func TestBatchExperimentJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "batch", "-json", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "BENCH_batch.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Experiment string `json:"experiment"`
		Metrics    []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("BENCH_batch.json is not valid JSON: %v", err)
	}
	byName := map[string]float64{}
	for _, m := range res.Metrics {
		byName[m.Name] = m.Value
	}
	for _, want := range []string{"single/stmts_per_sec", "batched/stmts_per_sec", "speedup"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("metric %q missing from %v", want, byName)
		}
	}
	if byName["speedup"] <= 1 {
		t.Errorf("speedup = %.1f, want > 1 (batching must not be slower)", byName["speedup"])
	}
}

// TestProverExperimentJSON smoke-tests another experiment through the -json
// path to ensure the flag is not catalog-specific.
func TestProverExperimentJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "prover", "-json", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_prover.json")); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

// decodeBench reads and unmarshals a written BENCH_<name>.json.
func decodeBench(t *testing.T, dir, name string, v any) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("%s is not valid JSON: %v", name, err)
	}
}

// TestParallelExperimentJSON runs the worker-pool experiment end to end.
// Wall-clock speedup is only asserted positive (a loaded test box must not
// turn a measurement into a correctness failure; CI gates the regenerated
// JSON), but the node ratio — how many fewer tree nodes the pool visits —
// is scheduler-independent and must clear the 1.5x contract here too.
func TestParallelExperimentJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "parallel", "-json", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Experiment string `json:"experiment"`
		Metrics    []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	decodeBench(t, dir, "BENCH_parallel.json", &res)
	if res.Experiment != "parallel" {
		t.Errorf("experiment = %q", res.Experiment)
	}
	byName := map[string]float64{}
	for _, m := range res.Metrics {
		byName[m.Name] = m.Value
	}
	if v, ok := byName["speedup"]; !ok || v <= 0 {
		t.Errorf("speedup = %v (present %v), want > 0", v, ok)
	}
	if v, ok := byName["node_ratio"]; !ok || v < 1.5 {
		t.Errorf("node_ratio = %v (present %v), want >= 1.5", v, ok)
	}
}

// TestClientExperimentJSON runs the odclient experiment end to end. The
// request-count reduction — unlike wall clock — is scheduler-independent
// (a coalesced/cached prove either reached the wire or it did not), so the
// 2x contract is asserted here as well as gated in CI.
func TestClientExperimentJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "client", "-json", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Experiment string `json:"experiment"`
		Metrics    []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	decodeBench(t, dir, "BENCH_client.json", &res)
	if res.Experiment != "client" {
		t.Errorf("experiment = %q", res.Experiment)
	}
	byName := map[string]float64{}
	for _, m := range res.Metrics {
		byName[m.Name] = m.Value
	}
	for _, want := range []string{"direct/requests", "coalesced/requests", "request_reduction"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("metric %q missing from %v", want, byName)
		}
	}
	if v := byName["request_reduction"]; v < 2 {
		t.Errorf("request_reduction = %.1f, want >= 2", v)
	}
	if byName["direct/requests"] != 32*256 {
		t.Errorf("direct client sent %v requests, want exactly one per prove (%d)",
			byName["direct/requests"], 32*256)
	}
}

// TestChurnExperimentJSON runs the churn experiment end to end: the negative
// closure must have served refutations across generation bumps (hits per
// generation at least 1) — that survival is the tier's whole point.
func TestChurnExperimentJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "churn", "-json", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Experiment string `json:"experiment"`
		Metrics    []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	decodeBench(t, dir, "BENCH_churn.json", &res)
	if res.Experiment != "churn" {
		t.Errorf("experiment = %q", res.Experiment)
	}
	negHits := -1.0
	for _, m := range res.Metrics {
		if m.Name == "negative_hits_per_generation" {
			negHits = m.Value
		}
	}
	if negHits < 1 {
		t.Errorf("negative_hits_per_generation = %v, want >= 1", negHits)
	}
}
