package main

import (
	"testing"

	"odlib/internal/lint"
)

// TestRepoIsLintClean runs the full analyzer set over the module, the same
// way CI's odlint gate does: any unsuppressed diagnostic in the tree fails
// the ordinary test run too.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; skipped with -short")
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; go list enumeration looks broken", len(pkgs))
	}
	for _, d := range lint.Run(pkgs, lint.DefaultAnalyzers()) {
		t.Errorf("%s", d)
	}
}
