// Command odlint runs odlib's project-specific static analyzers (see
// internal/lint) over the module and prints one file:line:col diagnostic
// per violation. It exits 1 when any diagnostic survives the
// //odlint:ignore suppression directives, 0 on a clean tree — CI runs
// `go run ./cmd/odlint ./...` as a hard gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"odlib/internal/lint"
)

func main() {
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: odlint [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs odlib's analyzers over the given package patterns (default ./...).\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Suppress a finding with: //odlint:ignore <analyzer> -- <reason>\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "odlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odlint:", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "odlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
