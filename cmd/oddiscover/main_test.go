package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odlib/internal/router"
	"odlib/internal/server"
)

func TestReadCSV(t *testing.T) {
	rel, err := readCSV(strings.NewReader("a,b,c\n1,2.5,x\n3,4.5,y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || len(rel.Attrs()) != 3 {
		t.Fatalf("shape = %d rows, %v", rel.Len(), rel.Attrs())
	}
	v, _ := rel.Value(0, "a")
	if v.Int != 1 {
		t.Errorf("int value = %v", v)
	}
	v, _ = rel.Value(1, "b")
	if v.F != 4.5 {
		t.Errorf("float value = %v", v)
	}
	v, _ = rel.Value(1, "c")
	if v.Str != "y" {
		t.Errorf("string value = %v", v)
	}
	if _, err := readCSV(strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := readCSV(strings.NewReader("a,a\n1,2\n")); err == nil {
		t.Error("duplicate header must fail")
	}
	if _, err := readCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row must fail")
	}
}

// calendarCSV is a small hierarchy: month determines quarter, era is constant.
const calendarCSV = "month,quarter,era\n1,1,9\n2,1,9\n4,2,9\n5,2,9\n7,3,9\n10,4,9\n"

func writeCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cal.csv")
	if err := os.WriteFile(path, []byte(calendarCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunStream: the parallel path streams ODs as found and reports the
// pipeline's pruning counters.
func TestRunStream(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workers", "4", "-stream", writeCSV(t)}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "found: ") {
		t.Errorf("no streamed ODs in output:\n%s", text)
	}
	if !strings.Contains(text, "refutation-pruned") || !strings.Contains(text, "partition cache") {
		t.Errorf("pipeline counters missing:\n%s", text)
	}
	if !strings.Contains(text, "constants: [era]") {
		t.Errorf("constant not reported:\n%s", text)
	}
}

// TestRunSequential: the default path still reports the minimal baseline.
func TestRunSequential(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{writeCSV(t)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "data checks:") {
		t.Errorf("baseline counters missing:\n%s", out.String())
	}
}

// TestRunDeclare pushes a discovery run into a live daemon and checks the
// ODs landed in the target shard.
func TestRunDeclare(t *testing.T) {
	rt, err := router.Open(router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(server.New(rt))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-workers", "2", "-declare", ts.URL, "-schema", "cal", writeCSV(t)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "declared ") {
		t.Errorf("declare not reported:\n%s", out.String())
	}
	l, err := rt.Listing("cal")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Declared) == 0 {
		t.Fatal("no ODs landed in the shard")
	}
}
