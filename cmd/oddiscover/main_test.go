package main

import (
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	rel, err := readCSV(strings.NewReader("a,b,c\n1,2.5,x\n3,4.5,y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || len(rel.Attrs()) != 3 {
		t.Fatalf("shape = %d rows, %v", rel.Len(), rel.Attrs())
	}
	v, _ := rel.Value(0, "a")
	if v.Int != 1 {
		t.Errorf("int value = %v", v)
	}
	v, _ = rel.Value(1, "b")
	if v.F != 4.5 {
		t.Errorf("float value = %v", v)
	}
	v, _ = rel.Value(1, "c")
	if v.Str != "y" {
		t.Errorf("string value = %v", v)
	}
	if _, err := readCSV(strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := readCSV(strings.NewReader("a,a\n1,2\n")); err == nil {
		t.Error("duplicate header must fail")
	}
	if _, err := readCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row must fail")
	}
}
