// Command oddiscover mines order dependencies from CSV data: constants,
// order-compatible attribute pairs, and an OD set whose closure covers
// everything the instance satisfies within the search bounds.
//
// Usage:
//
//	oddiscover -maxlhs 1 -maxrhs 2 data.csv
//	generate_csv | oddiscover -
//	oddiscover -workers 8 -stream data.csv
//	oddiscover -workers 8 -declare http://localhost:8080 -schema sales data.csv
//
// The first CSV record names the attributes; numeric-looking values compare
// as numbers, everything else as strings.
//
// With -workers 0 (the default) discovery runs the sequential baseline and
// reports a minimal OD set. Any other worker count runs the parallel
// level-wise pipeline: closure and refutation pruning ahead of the data,
// sorted-partition reuse per left-hand context, and — with -stream — each
// OD printed the moment its lattice level commits. -declare pushes the
// discovered set to a running odserve daemon through the client's batch
// declare, landing it in the shard selected by -schema.
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"odlib/internal/core"
	"odlib/internal/discover"
	"odlib/pkg/odclient"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "oddiscover:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("oddiscover", flag.ContinueOnError)
	maxLHS := fs.Int("maxlhs", 1, "maximum left-hand list length")
	maxRHS := fs.Int("maxrhs", 2, "maximum right-hand list length")
	maxAttrs := fs.Int("maxattrs", 7, "maximum attribute count")
	workers := fs.Int("workers", 0, "parallel validation workers; 0 = sequential baseline, <0 = GOMAXPROCS")
	stream := fs.Bool("stream", false, "print each OD as its lattice level commits (implies the parallel pipeline)")
	declare := fs.String("declare", "", "push discovered ODs to this odserve base URL via batch declare")
	schema := fs.String("schema", "", "shard the -declare push targets")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: oddiscover [flags] <file.csv | ->")
	}
	var in io.Reader = os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rel, err := readCSV(in)
	if err != nil {
		return err
	}
	opts := discover.Options{MaxLHS: *maxLHS, MaxRHS: *maxRHS, MaxAttrs: *maxAttrs}

	var ods []core.OD
	var constants core.List
	fmt.Fprintf(out, "rows: %d, attributes: %v\n", rel.Len(), rel.Attrs())
	if *workers != 0 || *stream {
		w := *workers
		if w < 0 {
			w = 0 // pipeline default: GOMAXPROCS
		}
		var onFound func(core.OD)
		if *stream {
			onFound = func(od core.OD) { fmt.Fprintf(out, "found: %s\n", od) }
		}
		res, err := discover.Pipeline(context.Background(), rel, discover.PipelineOptions{
			Options: opts,
			Workers: w,
			OnFound: onFound,
		})
		if err != nil {
			return err
		}
		ods, constants = res.ODs, res.Constants
		st := res.Stats
		fmt.Fprintf(out, "candidates: %d, closure-pruned: %d, refutation-pruned: %d, data checks: %d\n",
			st.Candidates, st.ClosurePruned, st.RefutationPruned, st.DataChecks)
		fmt.Fprintf(out, "rows scanned: %d, partition cache: %d hits / %d misses\n",
			st.RowsScanned, st.CacheHits, st.CacheMisses)
	} else {
		res, err := discover.Discover(rel, opts)
		if err != nil {
			return err
		}
		ods, constants = res.ODs, res.Constants
		fmt.Fprintf(out, "candidates: %d, data checks: %d\n", res.Candidates, res.DataChecks)
	}
	if len(constants) > 0 {
		fmt.Fprintf(out, "constants: %v\n", constants)
	}
	pairs, err := discover.CompatiblePairs(rel)
	if err != nil {
		return err
	}
	for _, pr := range pairs {
		fmt.Fprintf(out, "compatible: [%s] ~ [%s]\n", pr[0], pr[1])
	}
	fmt.Fprintf(out, "OD set (%d):\n", len(ods))
	for _, od := range ods {
		fmt.Fprintf(out, "  %s\n", od)
	}
	if *declare != "" {
		if err := declareODs(*declare, *schema, ods); err != nil {
			return err
		}
		fmt.Fprintf(out, "declared %d ODs to %s\n", len(ods), *declare)
	}
	return nil
}

// declareODs pushes the discovered set through the client's batch declare:
// one request, one WAL record, one closure rebuild on the target shard.
func declareODs(url, schema string, ods []core.OD) error {
	if len(ods) == 0 {
		return nil
	}
	cli, err := odclient.New(url)
	if err != nil {
		return err
	}
	defer cli.Close()
	stmts := make([]string, len(ods))
	for i, od := range ods {
		stmts[i] = od.String()
	}
	return cli.Declare(context.Background(), schema, stmts...)
}

func readCSV(in io.Reader) (*core.Relation, error) {
	r := csv.NewReader(in)
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	attrs := make(core.List, len(header))
	for i, h := range header {
		attrs[i] = core.Attribute(h)
	}
	rel, err := core.NewRelation(attrs)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		vals := make([]core.Value, len(rec))
		for i, s := range rec {
			if n, err := strconv.ParseInt(s, 10, 64); err == nil {
				vals[i] = core.Int(n)
			} else if f, err := strconv.ParseFloat(s, 64); err == nil {
				vals[i] = core.Float(f)
			} else {
				vals[i] = core.Str(s)
			}
		}
		if err := rel.AddRow(vals...); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
