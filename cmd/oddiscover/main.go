// Command oddiscover mines order dependencies from CSV data: constants,
// order-compatible attribute pairs, and a minimal OD set whose closure
// covers everything the instance satisfies within the search bounds.
//
// Usage:
//
//	oddiscover -maxlhs 1 -maxrhs 2 data.csv
//	generate_csv | oddiscover -
//
// The first CSV record names the attributes; numeric-looking values compare
// as numbers, everything else as strings.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"odlib/internal/core"
	"odlib/internal/discover"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oddiscover:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("oddiscover", flag.ContinueOnError)
	maxLHS := fs.Int("maxlhs", 1, "maximum left-hand list length")
	maxRHS := fs.Int("maxrhs", 2, "maximum right-hand list length")
	maxAttrs := fs.Int("maxattrs", 7, "maximum attribute count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: oddiscover [flags] <file.csv | ->")
	}
	var in io.Reader = os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rel, err := readCSV(in)
	if err != nil {
		return err
	}
	res, err := discover.Discover(rel, discover.Options{
		MaxLHS: *maxLHS, MaxRHS: *maxRHS, MaxAttrs: *maxAttrs,
	})
	if err != nil {
		return err
	}
	fmt.Printf("rows: %d, attributes: %v\n", rel.Len(), rel.Attrs())
	fmt.Printf("candidates: %d, data checks: %d\n", res.Candidates, res.DataChecks)
	if len(res.Constants) > 0 {
		fmt.Printf("constants: %v\n", res.Constants)
	}
	pairs, err := discover.CompatiblePairs(rel)
	if err != nil {
		return err
	}
	for _, pr := range pairs {
		fmt.Printf("compatible: [%s] ~ [%s]\n", pr[0], pr[1])
	}
	fmt.Printf("minimal OD set (%d):\n", len(res.ODs))
	for _, od := range res.ODs {
		fmt.Printf("  %s\n", od)
	}
	return nil
}

func readCSV(in io.Reader) (*core.Relation, error) {
	r := csv.NewReader(in)
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	attrs := make(core.List, len(header))
	for i, h := range header {
		attrs[i] = core.Attribute(h)
	}
	rel, err := core.NewRelation(attrs)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		vals := make([]core.Value, len(rec))
		for i, s := range rec {
			if n, err := strconv.ParseInt(s, 10, 64); err == nil {
				vals[i] = core.Int(n)
			} else if f, err := strconv.ParseFloat(s, 64); err == nil {
				vals[i] = core.Float(f)
			} else {
				vals[i] = core.Str(s)
			}
		}
		if err := rel.AddRow(vals...); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
