package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"odlib/internal/router"
)

// startDaemon boots run() in a goroutine and waits for the listener.
func startDaemon(t *testing.T, args ...string) (base string, done chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done = make(chan error, 1)
	go func() { done <- run(args, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, done
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil
}

// stopDaemon SIGTERMs the process (only one daemon runs at a time in this
// package's tests) and waits for a clean exit.
func stopDaemon(t *testing.T, done chan error) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
}

func postJSON(t *testing.T, url, body string, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

type healthz struct {
	OK     bool                         `json:"ok"`
	Shards map[string]router.ShardStats `json:"shards"`
	Totals struct {
		Shards   int `json:"shards"`
		Declared int `json:"declared"`
	} `json:"totals"`
}

// TestDaemonLifecycle boots the real daemon on a kernel-assigned port with a
// preloaded constraint file, drives it over HTTP, and shuts it down with
// SIGTERM — the full operational loop.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "ods.txt")
	text := "# warehouse constraints\n[month] -> [quarter]\n[d_date] <-> [d_date_sk]\n"
	if err := os.WriteFile(file, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	base, done := startDaemon(t, "-addr", "127.0.0.1:0", "-ods", file, "-drain", "2s")

	var health healthz
	getJSON(t, base+"/healthz", &health)
	if !health.OK || health.Totals.Declared != 3 {
		t.Fatalf("healthz = %+v; want 3 preloaded ODs (the <-> expands to two)", health)
	}

	var prove struct {
		Implied bool `json:"implied"`
	}
	postJSON(t, base+"/prove", `{"statement": "[d_date_sk] -> [quarter, month]"}`, &prove)
	if prove.Implied {
		t.Fatal("[d_date_sk] -> [quarter, month] should not be implied")
	}

	stopDaemon(t, done)
}

// TestWarmStartRestart is the durability acceptance test: populate a daemon
// with a data dir over several shards, kill it, restart it against the same
// dir, and require the identical OD listing and prove verdicts — then force
// a snapshot, kill, restart, and require the same again (snapshot + empty
// WAL path).
func TestWarmStartRestart(t *testing.T) {
	dataDir := t.TempDir()
	// Tiny segments force WAL rotation across the handful of mutations, so
	// the warm start exercises multi-segment recovery, not just one file.
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-drain", "2s",
		"-snapshot-every", "4", "-wal-segment-records", "2"}

	base, done := startDaemon(t, args...)
	postJSON(t, base+"/ods", `{"statements": ["[month] -> [quarter]", "[week] -> [month]"]}`, nil)
	postJSON(t, base+"/ods/batch",
		`{"schema": "sales", "declare": ["[s_a] -> [s_b]", "[s_b] -> [s_c]", "[s_c] -> [s_d]"]}`, nil)
	postJSON(t, base+"/ods", `{"schema": "inv", "statements": ["[bin] -> [aisle]"]}`, nil)
	// Withdraw one, so recovery must also replay a remove record.
	req, err := http.NewRequest("DELETE", base+"/ods", strings.NewReader(`{"statements": ["[week] -> [month]"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE /ods = %d", resp.StatusCode)
	}

	proveStatements := []string{
		"[s_a] -> [s_d]",                           // implied transitively on shard sales
		"[s_d] -> [s_a]",                           // refuted
		"[month] -> [quarter]",                     // implied on default
		"[week] -> [quarter]",                      // refuted: the link was withdrawn
		"[year, quarter, month] <-> [year, month]", // implied via [month] -> [quarter]
	}
	capture := func(base string) (listing map[string]any, verdicts []bool) {
		var all struct {
			Shards map[string]struct {
				Declared []string `json:"declared"`
				Closure  []string `json:"closure"`
			} `json:"shards"`
		}
		getJSON(t, base+"/ods", &all)
		listing = map[string]any{}
		for name, l := range all.Shards {
			listing[name] = fmt.Sprint(l.Declared, l.Closure)
		}
		for i, stmt := range proveStatements {
			schema := ""
			if i < 2 {
				schema = "sales"
			}
			var prove struct {
				Implied bool `json:"implied"`
			}
			b, _ := json.Marshal(map[string]string{"schema": schema, "statement": stmt})
			postJSON(t, base+"/prove", string(b), &prove)
			verdicts = append(verdicts, prove.Implied)
		}
		return listing, verdicts
	}

	wantListing, wantVerdicts := capture(base)
	if want := []bool{true, false, true, false, true}; fmt.Sprint(wantVerdicts) != fmt.Sprint(want) {
		t.Fatalf("pre-restart verdicts = %v, want %v", wantVerdicts, want)
	}
	stopDaemon(t, done)

	// Restart 1: recovery from snapshot + WAL replay.
	base, done = startDaemon(t, args...)
	gotListing, gotVerdicts := capture(base)
	if fmt.Sprint(gotListing) != fmt.Sprint(wantListing) {
		t.Fatalf("listing drifted across restart:\n  before: %v\n  after:  %v", wantListing, gotListing)
	}
	if fmt.Sprint(gotVerdicts) != fmt.Sprint(wantVerdicts) {
		t.Fatalf("verdicts drifted across restart: %v -> %v", wantVerdicts, gotVerdicts)
	}
	var health healthz
	getJSON(t, base+"/healthz", &health)
	if health.Totals.Shards != 3 {
		t.Fatalf("recovered %d shards, want 3", health.Totals.Shards)
	}
	for name, sh := range health.Shards {
		if sh.Store == nil {
			t.Fatalf("shard %q has no store stats", name)
		}
		rec := sh.Store.Recovery
		if rec.SnapshotODs == 0 && rec.Replayed == 0 {
			t.Fatalf("shard %q recovered nothing: %+v", name, rec)
		}
	}

	// Force snapshots, restart again: recovery must now come from snapshots.
	postJSON(t, base+"/snapshot", `{}`, nil)
	stopDaemon(t, done)

	base, done = startDaemon(t, args...)
	gotListing, gotVerdicts = capture(base)
	if fmt.Sprint(gotListing) != fmt.Sprint(wantListing) || fmt.Sprint(gotVerdicts) != fmt.Sprint(wantVerdicts) {
		t.Fatalf("state drifted across snapshot restart")
	}
	getJSON(t, base+"/healthz", &health)
	for name, sh := range health.Shards {
		if rec := sh.Store.Recovery; rec.Replayed != 0 || rec.SnapshotODs == 0 {
			t.Fatalf("shard %q should recover purely from its snapshot, got %+v", name, rec)
		}
	}
	stopDaemon(t, done)
}

// TestPreloadSkippedOnWarmStart: the -ods file must not re-log its
// constraints when the data dir already recovered them.
func TestPreloadSkippedOnWarmStart(t *testing.T) {
	dataDir := t.TempDir()
	file := filepath.Join(t.TempDir(), "ods.txt")
	if err := os.WriteFile(file, []byte("[A] -> [B]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-ods", file, "-drain", "2s"}

	base, done := startDaemon(t, args...)
	var health healthz
	getJSON(t, base+"/healthz", &health)
	if health.Totals.Declared != 1 {
		t.Fatalf("preload declared %d", health.Totals.Declared)
	}
	stopDaemon(t, done)

	base, done = startDaemon(t, args...)
	getJSON(t, base+"/healthz", &health)
	if health.Totals.Declared != 1 {
		t.Fatalf("after warm start declared %d, want 1", health.Totals.Declared)
	}
	if got := health.Shards[""].Store.WALRecords; got != 1 {
		t.Fatalf("WAL holds %d records after warm start, want 1 (no duplicate preload)", got)
	}
	stopDaemon(t, done)
}

func TestPreloadErrors(t *testing.T) {
	if err := run([]string{"-ods", "/does/not/exist"}, nil); err == nil {
		t.Fatal("missing preload file should fail startup")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("[A] -> oops("), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-ods", bad}, nil)
	if err == nil || !strings.Contains(err.Error(), "bad.txt") {
		t.Fatalf("err = %v, want parse failure naming the file", err)
	}
}

// TestFollowerDaemon is the end-to-end flag test for -follow: a leader and a
// follower daemon run side by side in this process, the follower tails the
// leader over real HTTP, serves proves at the leader's generation, and
// misdirects mutations to the leader's address. One SIGTERM stops both.
func TestFollowerDaemon(t *testing.T) {
	leaderBase, leaderDone := startDaemon(t,
		"-addr", "127.0.0.1:0", "-data-dir", t.TempDir(), "-drain", "2s",
		"-wal-segment-records", "2")
	postJSON(t, leaderBase+"/ods",
		`{"schema": "sales", "statements": ["[month] -> [quarter]", "[quarter] -> [year]"]}`, nil)

	followerBase, followerDone := startDaemon(t,
		"-addr", "127.0.0.1:0", "-data-dir", t.TempDir(), "-drain", "2s",
		"-follow", leaderBase, "-poll-interval", "10ms")

	type genResp struct {
		Shards map[string]uint64 `json:"shards"`
	}
	waitCaughtUp := func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			var lg, fg genResp
			getJSON(t, leaderBase+"/generation", &lg)
			getJSON(t, followerBase+"/generation", &fg)
			if len(fg.Shards) == len(lg.Shards) {
				caught := true
				for shard, gen := range lg.Shards {
					if fg.Shards[shard] != gen {
						caught = false
						break
					}
				}
				if caught {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower never caught up: leader %+v, follower %+v", lg, fg)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitCaughtUp()

	// Reads serve on the follower with leader verdicts.
	var prove struct {
		Implied bool `json:"implied"`
	}
	postJSON(t, followerBase+"/prove", `{"schema": "sales", "statement": "[month] -> [year]"}`, &prove)
	if !prove.Implied {
		t.Fatal("follower does not imply the leader's transitive chain")
	}

	// Mutations misdirect with the leader's address in the body.
	resp, err := http.Post(followerBase+"/ods", "application/json",
		strings.NewReader(`{"schema": "sales", "statements": ["[a] -> [b]"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var misdirect struct {
		Leader string `json:"leader"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&misdirect); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower mutation = %d, want 421", resp.StatusCode)
	}
	if misdirect.Leader != leaderBase {
		t.Fatalf("misdirect leader = %q, want %q", misdirect.Leader, leaderBase)
	}

	// New leader history reaches the follower while both keep running.
	postJSON(t, leaderBase+"/ods", `{"schema": "sales", "statements": ["[year] -> [decade]"]}`, nil)
	waitCaughtUp()
	postJSON(t, followerBase+"/prove", `{"schema": "sales", "statement": "[month] -> [decade]"}`, &prove)
	if !prove.Implied {
		t.Fatal("follower missed the post-start declare")
	}

	// Replica health shows on the follower only.
	var health healthz
	getJSON(t, followerBase+"/healthz", &health)
	if !health.OK || health.Shards["sales"].Replica == nil {
		t.Fatalf("follower healthz = %+v, want OK with replica status", health)
	}

	// One SIGTERM, two clean exits.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{"leader": leaderDone, "follower": followerDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s exited with %v", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not shut down", name)
		}
	}
}

// TestFollowerFlagValidation: -follow excludes preloading, which only makes
// sense on a leader.
func TestFollowerFlagValidation(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "ods.txt")
	if err := os.WriteFile(file, []byte("[a] -> [b]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-follow", "http://127.0.0.1:1", "-ods", file}, nil)
	if err == nil || !strings.Contains(err.Error(), "-follow") {
		t.Fatalf("err = %v, want -ods/-follow conflict", err)
	}
}
