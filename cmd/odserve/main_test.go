package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"odlib/internal/catalog"
)

// TestDaemonLifecycle boots the real daemon on a kernel-assigned port with a
// preloaded constraint file, drives it over HTTP, and shuts it down with
// SIGTERM — the full operational loop.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "ods.txt")
	text := "# warehouse constraints\n[month] -> [quarter]\n[d_date] <-> [d_date_sk]\n"
	if err := os.WriteFile(file, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-ods", file, "-drain", "2s"}, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	var health struct {
		OK      bool          `json:"ok"`
		Catalog catalog.Stats `json:"catalog"`
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.OK || health.Catalog.Declared != 3 {
		t.Fatalf("healthz = %+v; want 3 preloaded ODs (the <-> expands to two)", health)
	}

	var prove struct {
		Implied bool `json:"implied"`
	}
	resp, err = http.Post(base+"/prove", "application/json",
		strings.NewReader(`{"statement": "[d_date_sk] -> [quarter, month]"}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&prove); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if prove.Implied {
		t.Fatal("[d_date_sk] -> [quarter, month] should not be implied")
	}

	// SIGTERM must drain and exit cleanly.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v, want clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
}

func TestPreloadErrors(t *testing.T) {
	if err := run([]string{"-ods", "/does/not/exist"}, nil); err == nil {
		t.Fatal("missing preload file should fail startup")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("[A] -> oops("), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-ods", bad}, nil)
	if err == nil || !strings.Contains(err.Error(), "bad.txt") {
		t.Fatalf("err = %v, want parse failure naming the file", err)
	}
}
