// Command odserve runs the OD constraint catalog as a long-lived HTTP/JSON
// daemon — the theorem prover "efficient enough to be usable by a query
// optimizer" that the paper leaves as future work, packaged the way a DBMS
// would consume it: declare constraints once, then hit the memoized prover
// from many concurrent sessions.
//
// Usage:
//
//	odserve -addr :8080
//	odserve -addr :8080 -ods constraints.txt -memo 65536
//
// Endpoints (see internal/server):
//
//	curl -X POST localhost:8080/ods -d '{"statements": ["[month] -> [quarter]"]}'
//	curl localhost:8080/ods
//	curl -X POST localhost:8080/prove -d '{"statement": "[year, quarter, month] <-> [year, month]"}'
//	curl -X POST localhost:8080/rewrite -d '{"order": "[year, quarter, month]"}'
//	curl localhost:8080/healthz
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"odlib/internal/catalog"
	"odlib/internal/core"
	"odlib/internal/prover"
	"odlib/internal/server"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "odserve:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until shutdown. When ready is non-nil it
// receives the bound address once the listener is up (used by tests to talk
// to a daemon on a kernel-assigned port).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("odserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	odsFile := fs.String("ods", "", "file of OD statements to preload")
	memo := fs.Int("memo", catalog.DefaultMemoCapacity, "verdict memo capacity")
	maxAttrs := fs.Int("maxattrs", prover.DefaultMaxAttrs, "attribute limit per implication question")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cat := catalog.New(catalog.WithMemoCapacity(*memo), catalog.WithMaxAttrs(*maxAttrs))
	if *odsFile != "" {
		n, err := preload(cat, *odsFile)
		if err != nil {
			return err
		}
		log.Printf("preloaded %d ODs from %s (closure size %d)", n, *odsFile, cat.Stats().Closure)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           server.New(cat),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("odserve listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// preload declares the statements of a constraints file into the catalog.
func preload(cat *catalog.Catalog, path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	ods, err := core.ParseStatements(string(b))
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return cat.Add(ods...), nil
}
