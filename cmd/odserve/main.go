// Command odserve runs the OD constraint catalog as a long-lived HTTP/JSON
// daemon — the theorem prover "efficient enough to be usable by a query
// optimizer" that the paper leaves as future work, packaged the way a DBMS
// would consume it: declare constraints once, then hit the memoized prover
// from many concurrent sessions. With a data directory the catalog is
// durable: every declare/remove is write-ahead logged and snapshotted, so a
// restarted daemon serves the identical constraint set and verdicts.
//
// Usage:
//
//	odserve -addr :8080
//	odserve -addr :8080 -ods constraints.txt -memo 65536
//	odserve -addr :8080 -data-dir /var/lib/odserve -snapshot-every 1024
//	odserve -addr :8080 -data-dir /var/lib/odserve -wal-segment-bytes 1048576 -wal-segment-records 4096
//	odserve -addr :8080 -data-dir /var/lib/odserve -fsync=false -shard-by-prefix
//	odserve -addr :8080 -prove-workers 8 -prove-timeout 2s
//	odserve -addr :8080 -discover-workers 8
//	odserve -addr :8080 -log-requests -pprof-addr localhost:6060
//	odserve -addr :8080 -data-dir /var/lib/odserve -backpressure-segments 8
//	odserve -addr :8081 -follow http://leader:8080 -data-dir /var/lib/odserve-replica -max-lag-records 64
//
// Endpoints (see internal/server):
//
//	curl -X POST localhost:8080/ods -d '{"statements": ["[month] -> [quarter]"], "schema": "sales"}'
//	curl localhost:8080/ods
//	curl -X POST localhost:8080/ods/batch -d '{"declare": ["[a] -> [b]", "[b] -> [c]"]}'
//	curl -X POST localhost:8080/prove -d '{"statement": "[year, quarter, month] <-> [year, month]"}'
//	curl -X POST localhost:8080/prove/batch -d '{"statements": ["[a] -> [c]", "[c] -> [a]"]}'
//	curl -X POST localhost:8080/rewrite -d '{"order": "[year, quarter, month]"}'
//	curl -X POST localhost:8080/discover -d '{"attrs": ["a", "b"], "rows": [[1, 10], [2, 20]], "declare": true}'
//	curl -X POST localhost:8080/snapshot
//	curl localhost:8080/generation
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests and closing shard stores before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"odlib/internal/catalog"
	"odlib/internal/core"
	"odlib/internal/prover"
	"odlib/internal/replica"
	"odlib/internal/router"
	"odlib/internal/server"
	"odlib/internal/store"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "odserve:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until shutdown. When ready is non-nil it
// receives the bound address once the listener is up (used by tests to talk
// to a daemon on a kernel-assigned port).
func run(args []string, ready chan<- string) (err error) {
	fs := flag.NewFlagSet("odserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	odsFile := fs.String("ods", "", "file of OD statements to preload (skipped when the data dir recovered state)")
	memo := fs.Int("memo", catalog.DefaultMemoCapacity, "verdict memo capacity per shard")
	maxAttrs := fs.Int("maxattrs", prover.DefaultMaxAttrs, "attribute limit per implication question")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	dataDir := fs.String("data-dir", "", "root of per-shard WAL+snapshot state; empty runs in-memory")
	snapshotEvery := fs.Int("snapshot-every", 1024, "nudge the background compactor after this many WAL records per shard; 0 = manual (POST /snapshot) only")
	fsync := fs.Bool("fsync", true, "fsync every WAL group commit before acknowledging")
	segmentBytes := fs.Int64("wal-segment-bytes", store.DefaultSegmentBytes, "seal and rotate the active WAL segment at this size; <0 disables size-based rotation")
	segmentRecords := fs.Int("wal-segment-records", 0, "seal and rotate the active WAL segment after this many records; 0 = size-based only")
	shardByPrefix := fs.Bool("shard-by-prefix", false, "derive shard keys from attribute-name prefixes (before the first underscore)")
	proveWorkers := fs.Int("prove-workers", runtime.GOMAXPROCS(0), "goroutines per pattern search; 1 = sequential")
	provePool := fs.Int("prove-pool", runtime.GOMAXPROCS(0), "extra search goroutines allowed across ALL concurrent proves (shared pool); 0 = every search runs inline, <0 = unbounded per-search fan-out")
	proveTimeout := fs.Duration("prove-timeout", 0, "server-side bound on each prove/rewrite search; 0 = unbounded")
	discoverWorkers := fs.Int("discover-workers", 0, "default validation parallelism for POST /discover runs; 0 = GOMAXPROCS")
	backpressure := fs.Int("backpressure-segments", 0, "reject declares with 429 when a shard's compaction lag reaches this many sealed WAL segments; 0 = off")
	logRequests := fs.Bool("log-requests", false, "log one structured line per request (method, path, status, shard, tier, duration)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty = off")
	follow := fs.String("follow", "", "run as a read-only follower tailing this leader URL (e.g. http://leader:8080)")
	pollInterval := fs.Duration("poll-interval", replica.DefaultPollInterval, "follower: leader poll cadence")
	maxLagRecords := fs.Int("max-lag-records", 0, "follower: refuse proves when trailing the leader by more than this many WAL records; 0 = serve at any lag")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow != "" && *odsFile != "" {
		return fmt.Errorf("-ods cannot be combined with -follow: a follower's constraints come from its leader")
	}

	// The telemetry registry is built before the router so every layer's
	// hooks thread into the router's options; the shared search pool bounds
	// total spawned search goroutines across all concurrent proves.
	tel := server.NewTelemetry()
	var pool *prover.Pool
	if *provePool >= 0 {
		pool = prover.NewPool(*provePool)
	}
	catOpts := []catalog.Option{
		catalog.WithMemoCapacity(*memo),
		catalog.WithMaxAttrs(*maxAttrs),
		catalog.WithWorkers(*proveWorkers),
	}
	catOpts = append(catOpts, tel.CatalogOptions(pool)...)

	rt, err := router.Open(router.Options{
		DataDir: *dataDir,
		Store: store.Options{
			Fsync:          *fsync,
			SnapshotEvery:  *snapshotEvery,
			SegmentBytes:   *segmentBytes,
			SegmentRecords: *segmentRecords,
			Telemetry:      tel.StoreTelemetry(),
		},
		Catalog:              catOpts,
		ShardByPrefix:        *shardByPrefix,
		BackpressureSegments: *backpressure,
		Telemetry:            tel.RouterTelemetry(),
		Follower:             *follow != "",
		MaxLagRecords:        *maxLagRecords,
	})
	if err != nil {
		return err
	}
	tel.ObserveRouter(rt, pool)
	// One close on every exit path, reporting its error when nothing else
	// already failed.
	defer func() {
		if cerr := rt.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing shard stores: %w", cerr)
		}
	}()
	logRecovery(rt)

	if *follow != "" {
		tailer, terr := replica.New(replica.Options{
			Leader:       *follow,
			Router:       rt,
			PollInterval: *pollInterval,
		})
		if terr != nil {
			return terr
		}
		tailer.Start()
		defer tailer.Close()
		log.Printf("following leader %s (poll every %v, max lag %d records)", *follow, *pollInterval, *maxLagRecords)
	}

	if *odsFile != "" {
		n, skipped, err := preload(rt, *odsFile)
		if err != nil {
			return err
		}
		if skipped {
			log.Printf("skipping preload of %s: data dir recovered a non-empty catalog", *odsFile)
		} else {
			log.Printf("preloaded %d ODs from %s", n, *odsFile)
		}
	}

	srvOpts := []server.Option{
		server.WithProveTimeout(*proveTimeout),
		server.WithTelemetry(tel),
		server.WithDiscoverWorkers(*discoverWorkers),
		server.WithDiscoverPool(pool),
	}
	if *follow != "" {
		srvOpts = append(srvOpts, server.WithLeader(*follow))
	}
	if *logRequests {
		srvOpts = append(srvOpts, server.WithAccessLog(slog.New(slog.NewTextHandler(os.Stderr, nil))))
	}

	// pprof lives on its own listener and mux so profiling is never exposed
	// on the serving port — bind it to localhost (or a firewalled interface)
	// only.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if perr := psrv.Serve(pln); perr != nil && !errors.Is(perr, http.ErrServerClosed) {
				log.Printf("pprof server: %v", perr)
			}
		}()
		defer psrv.Close()
		log.Printf("pprof listening on %s", pln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           server.New(rt, srvOpts...),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("odserve listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// logRecovery reports what the router found on disk, one line per shard.
func logRecovery(rt *router.Router) {
	for name, st := range rt.Stats() {
		if st.Store == nil {
			continue
		}
		rec := st.Store.Recovery
		display := name
		if display == router.DefaultShard {
			display = "(default)"
		}
		log.Printf("shard %s recovered: %d ODs from snapshot seq %d, %d WAL records replayed, %d torn bytes truncated",
			display, rec.SnapshotODs, rec.SnapshotSeq, rec.Replayed, rec.TornBytes)
	}
}

// preload declares the statements of a constraints file through the normal
// (logged) declare path, unless the data dir already recovered constraints —
// replaying the same preload on every boot would grow the WAL with
// duplicates for nothing.
func preload(rt *router.Router, path string) (int, bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	ods, err := core.ParseStatements(string(b))
	if err != nil {
		return 0, false, fmt.Errorf("%s: %w", path, err)
	}
	for _, st := range rt.Stats() {
		if st.Catalog.Declared > 0 {
			return 0, true, nil
		}
	}
	ops := make([]router.BatchOp, len(ods))
	for i, od := range ods {
		ops[i] = router.BatchOp{ODs: []core.OD{od}}
	}
	res, err := rt.ApplyBatch(ops)
	if err != nil {
		return 0, false, err
	}
	added := 0
	for _, m := range res {
		added += m.Added
	}
	return added, false, nil
}
