package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunProve(t *testing.T) {
	all, err := run([]string{"-m", "[month] -> [quarter]",
		"[year, quarter, month] <-> [year, month]"})
	if err != nil || !all {
		t.Errorf("implied case: all=%v err=%v", all, err)
	}
	all, err = run([]string{"-m", "[month] -> [quarter]", "[quarter] -> [month]"})
	if err != nil || all {
		t.Errorf("refuted case: all=%v err=%v", all, err)
	}
	if _, err := run([]string{"-m", "[a] -> [b]"}); err == nil {
		t.Error("no candidates must fail")
	}
	if _, err := run([]string{"-m", "junk", "[a] -> [b]"}); err == nil {
		t.Error("bad constraints must fail")
	}
	if _, err := run([]string{"junk statement"}); err == nil {
		t.Error("bad candidate must fail")
	}
	if _, err := run([]string{"-f", "/nonexistent/file", "[a] -> [b]"}); err == nil {
		t.Error("missing file must fail")
	}
}

func TestRunProveFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "constraints.txt")
	if err := os.WriteFile(path, []byte("# calendar\n[month] -> [quarter]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	all, err := run([]string{"-f", path, "[year, month] -> [year, quarter]"})
	if err != nil || !all {
		t.Errorf("file constraints: all=%v err=%v", all, err)
	}
}
