// Command odprove decides logical implication for order dependencies: given
// a set of prescribed ODs and candidate statements, it reports which
// candidates are implied and prints a two-row counterexample for those that
// are not — the theorem prover the paper names as future work.
//
// Usage:
//
//	odprove -m "[month] -> [quarter]" "[year, quarter, month] <-> [year, month]"
//	odprove -f constraints.txt "[A] ~ [B]"
//
// Statements use the syntax "[A, B] -> [C]" (OD), "<->" (equivalence) and
// "~" (order compatibility); -f reads newline-separated constraints with
// #-comments.
package main

import (
	"flag"
	"fmt"
	"os"

	"odlib/internal/core"
	"odlib/internal/prover"
)

func main() {
	allImplied, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "odprove:", err)
		os.Exit(1)
	}
	if !allImplied {
		os.Exit(2)
	}
}

// run executes the prover CLI, reporting whether every candidate was
// implied.
func run(args []string) (bool, error) {
	fs := flag.NewFlagSet("odprove", flag.ContinueOnError)
	inline := fs.String("m", "", "constraint statements, ';'-separated")
	file := fs.String("f", "", "file of constraint statements")
	maxAttrs := fs.Int("maxattrs", prover.DefaultMaxAttrs, "attribute limit for the search")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	text := *inline
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			return false, err
		}
		text = text + "\n" + string(b)
	}
	constraints, err := core.ParseStatements(text)
	if err != nil {
		return false, err
	}
	if fs.NArg() == 0 {
		return false, fmt.Errorf("no candidate statements given")
	}
	p := prover.New(constraints, prover.WithMaxAttrs(*maxAttrs))
	fmt.Printf("constraints: %s\n", core.ODsString(constraints))
	all := true
	for _, arg := range fs.Args() {
		ods, err := core.ParseStatement(arg)
		if err != nil {
			return false, err
		}
		implied := true
		var witness *core.Pattern
		for _, od := range ods {
			ok, w, err := p.ImpliesWitness(od)
			if err != nil {
				return false, err
			}
			if !ok {
				implied = false
				witness = w
				break
			}
		}
		if implied {
			fmt.Printf("IMPLIED      %s\n", arg)
			continue
		}
		all = false
		fmt.Printf("NOT IMPLIED  %s\n", arg)
		fmt.Printf("  counterexample (satisfies the constraints, falsifies the statement):\n")
		rel := witness.Relation()
		for i := 0; i < rel.Len(); i++ {
			fmt.Printf("    row %d: %v\n", i+1, rel.Row(i))
		}
		fmt.Printf("    pattern: %s\n", witness)
	}
	return all, nil
}
