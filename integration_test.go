package odlib

// Integration tests spanning the whole stack: declared engine constraints
// feed the planner, proof objects certify the rewrites the planner applies,
// and the completeness construction round-trips through discovery.

import (
	"math/rand"
	"testing"

	"odlib/internal/armstrong"
	"odlib/internal/core"
	"odlib/internal/discover"
	"odlib/internal/engine"
	"odlib/internal/inference"
	"odlib/internal/plan"
	"odlib/internal/prover"
	"odlib/internal/rewrite"
	"odlib/internal/warehouse"
)

// TestDeclaredConstraintsDriveThePlanner is the prototype's full loop: ODs
// declared as check constraints on the table, validated against the data,
// then used by the planner to eliminate the sort.
func TestDeclaredConstraintsDriveThePlanner(t *testing.T) {
	tbl, err := engine.NewTable("sales", core.L("year", "quarter", "month", "amount"))
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 2; y++ {
		for m := 1; m <= 12; m++ {
			if err := tbl.Insert(
				core.Int(int64(2000+y)), core.Int(int64((m-1)/3+1)),
				core.Int(int64(m)), core.Int(int64(m*y+7))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := tbl.BuildIndex("ym", core.L("year", "month")); err != nil {
		t.Fatal(err)
	}
	// Declare and validate the OD check constraint.
	od, err := core.ParseOD("[month] -> [quarter]")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.DeclareOD(od); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CheckConstraints(); err != nil {
		t.Fatal(err)
	}
	// The planner picks the constraint up from the table itself.
	p := plan.NewPlanner(plan.ConstraintsFromTables(tbl))
	var stats engine.Stats
	pl, err := p.PlanQuery(plan.Query{
		Table:   tbl,
		OrderBy: core.L("year", "quarter", "month"),
	}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pl.Execute(&stats)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sorts != 0 {
		t.Errorf("declared constraint should have eliminated the sort:\n%s", pl.Explain())
	}
	if len(rows) != tbl.Len() {
		t.Errorf("row count = %d", len(rows))
	}
	// A constraint the data violates is rejected before it can mislead the
	// planner.
	if err := tbl.DeclareOD(core.NewOD(core.L("quarter"), core.L("month"))); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CheckConstraints(); err == nil {
		t.Error("violated declaration must fail the check")
	}
}

// TestRewriteCarriesItsProof: the ORDER BY reduction the planner relies on
// is certified by a verified axiom-level proof whose conclusion the prover
// confirms.
func TestRewriteCarriesItsProof(t *testing.T) {
	ods, err := core.ParseStatements("[month] -> [quarter]; [date] -> [month]")
	if err != nil {
		t.Fatal(err)
	}
	c := rewrite.NewConstraints(nil, ods)
	res, err := rewrite.ReduceOrder(core.L("year", "quarter", "month", "date"), c)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := res.Proof(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Verify(); err != nil {
		t.Fatalf("proof invalid: %v", err)
	}
	concl, err := proof.Conclusion()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := prover.New(ods).Implies(concl)
	if err != nil || !ok {
		t.Fatalf("prover rejects the proof's conclusion %s: %v %v", concl, ok, err)
	}
}

// TestDiscoveryRoundTrip: constraints → Armstrong relation → discovery
// recovers an equivalent constraint set. This closes the loop between the
// completeness construction (Section 4) and the future-work discovery
// (Section 6).
func TestDiscoveryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	universe := core.L("A", "B", "C")
	for trial := 0; trial < 10; trial++ {
		var m []core.OD
		for j := 0; j < 1+rng.Intn(2); j++ {
			m = append(m, core.RandOD(rng, universe, 2))
		}
		table, err := armstrong.NewBuilder(0).CanonicalTable(m, universe)
		if err != nil {
			t.Fatal(err)
		}
		res, err := discover.Discover(table, discover.Options{MaxLHS: 2, MaxRHS: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Everything originally declared (with sides within the discovery
		// bounds) must be implied by what discovery found.
		p := prover.New(res.ODs)
		for _, od := range m {
			if len(od.LHS) > 2 || len(od.RHS) > 2 {
				continue
			}
			ok, err := p.Implies(od)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("discovery lost %s from %s; found %s",
					od, core.ODsString(m), core.ODsString(res.ODs))
			}
		}
		// And nothing beyond the closure: each discovered OD is implied by
		// the original set (the Armstrong relation satisfies nothing more).
		q := prover.New(m)
		for _, od := range res.ODs {
			ok, err := q.Implies(od)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("discovery invented %s not implied by %s", od, core.ODsString(m))
			}
		}
	}
}

// TestWarehouseConstraintDeclarationLoop: the warehouse's declared ODs
// validate as engine check constraints on the dimension table.
func TestWarehouseConstraintDeclarationLoop(t *testing.T) {
	w, err := warehouse.Generate(warehouse.Config{
		StartYear: 2001, Days: 200, FactRows: 100, Items: 5, Stores: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, od := range warehouse.DeclaredODs() {
		if err := w.DateDim.DeclareOD(od); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.DateDim.CheckConstraints(); err != nil {
		t.Fatalf("warehouse constraints must validate: %v", err)
	}
	c := plan.ConstraintsFromTables(w.DateDim)
	ok, err := c.Prover().Equivalent(core.L("d_date_sk"), core.L("d_date"))
	if err != nil || !ok {
		t.Errorf("table-declared constraints should license the date rewrite: %v %v", ok, err)
	}
}

// TestProofSystemAgreesWithProverExhaustively: over a two-attribute
// universe, compare the prover against the Armstrong relation for every OD
// with sides up to length 2 under a sample of constraint sets — a small
// exhaustive slice of the completeness theorem.
func TestProofSystemAgreesWithProverExhaustively(t *testing.T) {
	universe := core.L("A", "B")
	var lists []core.List
	lists = append(lists, nil, core.L("A"), core.L("B"), core.L("A", "B"), core.L("B", "A"))
	var allODs []core.OD
	for _, l := range lists {
		for _, r := range lists {
			allODs = append(allODs, core.NewOD(l, r))
		}
	}
	for _, m := range [][]core.OD{
		{},
		{core.NewOD(core.L("A"), core.L("B"))},
		{core.NewOD(core.L("A"), core.L("A", "B"))},
		core.OrderCompat(core.L("A"), core.L("B")),
		{core.ConstantOD("A")},
	} {
		table, err := armstrong.NewBuilder(0).CanonicalTable(m, universe)
		if err != nil {
			t.Fatal(err)
		}
		p := prover.New(m)
		for _, od := range allODs {
			implied, err := p.Implies(od)
			if err != nil {
				t.Fatal(err)
			}
			holds, _, err := table.Satisfies(od)
			if err != nil {
				t.Fatal(err)
			}
			if implied != holds {
				t.Fatalf("under %s, %s: prover=%v table=%v",
					core.ODsString(m), od, implied, holds)
			}
		}
	}
}

// TestFDProofBridge: the prover's FD fast path and the proof synthesizer
// agree — every Armstrong-implied FD-form OD gets a verified proof.
func TestFDProofBridge(t *testing.T) {
	asm := []core.OD{
		core.NewOD(core.L("A"), core.L("A", "B")),
		core.NewOD(core.L("B", "C"), core.L("B", "C", "D")),
	}
	x, y := core.L("A", "C"), core.L("D", "B")
	ok, err := prover.New(asm).Implies(core.NewOD(x, x.Concat(y)))
	if err != nil || !ok {
		t.Fatalf("prover should accept the FD-form OD: %v %v", ok, err)
	}
	proof, err := inference.ProveTheorem(asm, func(b *inference.Builder) int {
		steps := []int{b.Assume(asm[0]), b.Assume(asm[1])}
		return b.FDImplication(steps, x, y)
	})
	if err != nil {
		t.Fatal(err)
	}
	concl, _ := proof.Conclusion()
	if !concl.Equal(core.NewOD(x, x.Concat(y))) {
		t.Errorf("proof concludes %s", concl)
	}
}
