package odlib

import (
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	constraints, err := ParseConstraints("[month] -> [quarter]")
	if err != nil {
		t.Fatal(err)
	}
	r := NewReasoner(constraints)

	ok, err := r.Equivalent(L("year", "quarter", "month"), L("year", "month"))
	if err != nil || !ok {
		t.Errorf("Example 1 equivalence should hold: %v %v", ok, err)
	}
	reduced, err := ReduceOrderBy(L("year", "quarter", "month"), constraints)
	if err != nil || !reduced.Equal(L("year", "month")) {
		t.Errorf("ReduceOrderBy = %v, %v", reduced, err)
	}
	eq, err := OrderEquivalent(L("year", "quarter", "month"), L("year", "month"), constraints)
	if err != nil || !eq {
		t.Errorf("OrderEquivalent = %v, %v", eq, err)
	}

	// Refutation with a counterexample.
	od, err := ParseOD("[quarter] -> [month]")
	if err != nil {
		t.Fatal(err)
	}
	implied, err := r.Implies(od)
	if err != nil || implied {
		t.Errorf("reverse must not be implied: %v %v", implied, err)
	}
	cx, err := r.Counterexample(od)
	if err != nil || cx == nil {
		t.Fatalf("expected counterexample: %v", err)
	}
	okM, _, err := cx.SatisfiesAll(constraints)
	if err != nil || !okM {
		t.Error("counterexample must satisfy the constraints")
	}
	okOD, _, err := cx.Satisfies(od)
	if err != nil || okOD {
		t.Error("counterexample must falsify the candidate")
	}
	// Implied statements have no counterexample.
	cx2, err := r.Counterexample(NewOD(L("month"), L("quarter")))
	if err != nil || cx2 != nil {
		t.Errorf("implied OD must have no counterexample: %v %v", cx2, err)
	}
}

func TestFacadeCatalog(t *testing.T) {
	constraints, err := ParseConstraints("[A] -> [B]; [B] -> [C]")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalog(constraints...)
	ok, err := c.Implies(NewOD(L("A"), L("C")))
	if err != nil || !ok {
		t.Errorf("catalog should imply the transitive [A] -> [C]: %v %v", ok, err)
	}
	res, err := c.ReduceOrder(L("A", "B", "C"))
	if err != nil || !res.Reduced.Equal(L("A")) {
		t.Errorf("catalog ReduceOrder = %v, %v; want [A]", res.Reduced, err)
	}
	if c.Remove(NewOD(L("B"), L("C"))) != 1 {
		t.Error("Remove should withdraw the declared OD")
	}
	ok, err = c.Implies(NewOD(L("A"), L("C")))
	if err != nil || ok {
		t.Errorf("catalog must forget the derived OD after removal: %v %v", ok, err)
	}
}

func TestFacadeArmstrong(t *testing.T) {
	constraints, err := ParseConstraints("[A] -> [B]")
	if err != nil {
		t.Fatal(err)
	}
	table, err := ArmstrongRelation(constraints, L("A", "B", "C"))
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := table.SatisfiesAll(constraints)
	if err != nil || !ok {
		t.Error("Armstrong relation must satisfy the constraints")
	}
	holds, _, err := table.Satisfies(NewOD(L("B"), L("A")))
	if err != nil || holds {
		t.Error("Armstrong relation must falsify the non-implied reverse")
	}
}

func TestFacadeDiscoverAndProve(t *testing.T) {
	rel, err := NewRelation(L("A", "B"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := rel.AddIntRow(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	ods, err := DiscoverODs(rel)
	if err != nil {
		t.Fatal(err)
	}
	found := NewReasoner(ods)
	ok, err := found.Equivalent(L("A"), L("B"))
	if err != nil || !ok {
		t.Errorf("discovery should find A <-> B: %v %v", ok, err)
	}

	asm := []OD{NewOD(L("A"), L("B")), NewOD(L("A"), L("C"))}
	proof, err := Prove(asm, func(b *ProofBuilder) int {
		return b.Union(b.Assume(asm[0]), b.Assume(asm[1]))
	})
	if err != nil {
		t.Fatal(err)
	}
	concl, err := proof.Conclusion()
	if err != nil || !concl.Equal(NewOD(L("A"), L("B", "C"))) {
		t.Errorf("proved %s, err %v", concl, err)
	}
}
