module odlib

go 1.24
