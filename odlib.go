// Package odlib is a library for reasoning about order dependencies (ODs)
// over lexicographically ordered tuples, implementing "Fundamentals of Order
// Dependencies" (Szlichta, Godfrey, Gryz; PVLDB 5(11), 2012).
//
// An order dependency X ↦ Y — with X and Y lists of attributes — states
// that sorting a relation by X also sorts it by Y. ODs generalize
// functional dependencies and license query rewrites that FDs cannot, such
// as dropping quarter from ORDER BY year, quarter, month given
// [month] ↦ [quarter].
//
// The facade re-exports the stable API:
//
//   - Parsing and semantics: L, ParseOD, ParseConstraints, relations with
//     split/swap witnesses (core types re-exported below).
//   - Reasoner: a sound and complete implication prover with two-row
//     counterexamples (the paper's future-work "theorem prover").
//   - Proofs: machine-checkable derivations in the paper's six-axiom
//     system, including all its derived theorems.
//   - ArmstrongRelation: the completeness construction — an instance
//     satisfying exactly the closure of a given OD set.
//   - ReduceOrderBy / OrderEquivalent: the ReduceOrder⁺ query rewrites.
//   - DiscoverODs: OD discovery from data.
//
// Deeper functionality (the execution engine, the planner and the TPC-DS
// style benchmark harness) lives in the internal packages and is exercised
// by the example programs and cmd/ tools.
package odlib

import (
	"odlib/internal/armstrong"
	"odlib/internal/catalog"
	"odlib/internal/core"
	"odlib/internal/discover"
	"odlib/internal/inference"
	"odlib/internal/prover"
	"odlib/internal/rewrite"
)

// Re-exported core types: lists are the fundamental notion of OD theory.
type (
	// Attribute is a named column.
	Attribute = core.Attribute
	// List is an ordered attribute list.
	List = core.List
	// OD is an order dependency between two lists.
	OD = core.OD
	// Relation is a relation instance for semantic checks.
	Relation = core.Relation
	// Violation is a split or swap witness falsifying an OD.
	Violation = core.Violation
	// Pattern is a two-row comparison pattern (counterexample form).
	Pattern = core.Pattern
	// Proof is a machine-checkable derivation in the six-axiom system.
	Proof = inference.Proof
	// ProofBuilder constructs derivations step by step.
	ProofBuilder = inference.Builder
)

// L builds an attribute list: L("year", "month").
func L(attrs ...string) List { return core.L(attrs...) }

// NewOD builds the order dependency lhs ↦ rhs.
func NewOD(lhs, rhs List) OD { return core.NewOD(lhs, rhs) }

// ParseOD parses "[A, B] -> [C]".
func ParseOD(s string) (OD, error) { return core.ParseOD(s) }

// ParseConstraints parses newline- or semicolon-separated OD statements,
// expanding "<->" (equivalence) and "~" (order compatibility).
func ParseConstraints(text string) ([]OD, error) { return core.ParseStatements(text) }

// NewRelation creates an empty relation over the schema.
func NewRelation(attrs List) (*Relation, error) { return core.NewRelation(attrs) }

// Reasoner decides logical implication for a fixed OD set. It is sound and
// complete: refutations come with two-row counterexamples.
type Reasoner struct {
	p *prover.Prover
}

// NewReasoner builds a reasoner over the constraint set.
func NewReasoner(constraints []OD) *Reasoner {
	return &Reasoner{p: prover.New(constraints)}
}

// Implies reports whether the constraints logically imply od.
func (r *Reasoner) Implies(od OD) (bool, error) { return r.p.Implies(od) }

// Counterexample returns a two-row witness relation that satisfies the
// constraints and falsifies od, or nil when od is implied.
func (r *Reasoner) Counterexample(od OD) (*Relation, error) {
	ok, w, err := r.p.ImpliesWitness(od)
	if err != nil || ok {
		return nil, err
	}
	return w.Relation(), nil
}

// Equivalent reports whether the constraints imply x ↔ y: ORDER BY x and
// ORDER BY y produce identical orderings.
func (r *Reasoner) Equivalent(x, y List) (bool, error) { return r.p.Equivalent(x, y) }

// OrderCompatible reports whether the constraints imply x ~ y (XY ↔ YX).
func (r *Reasoner) OrderCompatible(x, y List) (bool, error) { return r.p.OrderCompatible(x, y) }

// ArmstrongRelation builds the paper's completeness construction over the
// universe: a relation satisfying every OD the constraints imply and
// falsifying every OD (over the universe) they do not.
func ArmstrongRelation(constraints []OD, universe List) (*Relation, error) {
	return armstrong.NewBuilder(0).CanonicalTable(constraints, universe)
}

// ReduceOrderBy minimizes an ORDER BY list under the constraints using the
// paper's ReduceOrder⁺: the result is order equivalent to the input.
func ReduceOrderBy(order List, constraints []OD) (List, error) {
	res, err := rewrite.ReduceOrder(order, rewrite.NewConstraints(nil, constraints))
	if err != nil {
		return nil, err
	}
	return res.Reduced, nil
}

// OrderEquivalent reports whether two ORDER BY lists are interchangeable
// under the constraints.
func OrderEquivalent(a, b List, constraints []OD) (bool, error) {
	return rewrite.Equivalent(a, b, rewrite.NewConstraints(nil, constraints))
}

// DiscoverODs mines a minimal set of order dependencies (sides up to two
// attributes) from a relation instance.
func DiscoverODs(r *Relation) ([]OD, error) {
	res, err := discover.Discover(r, discover.Options{})
	if err != nil {
		return nil, err
	}
	return res.ODs, nil
}

// Prove runs a derivation against the given assumptions and returns the
// verified proof; see inference.Builder for the available theorem steps.
func Prove(assumptions []OD, derive func(*ProofBuilder) int) (*Proof, error) {
	return inference.ProveTheorem(assumptions, derive)
}

// Catalog is a thread-safe OD constraint catalog with eagerly maintained
// transitive closure and memoized prover verdicts: the long-lived, shared
// form of Reasoner that concurrent queries consult at optimization time.
// cmd/odserve exposes one over HTTP.
type Catalog = catalog.Catalog

// NewCatalog creates an empty concurrent constraint catalog.
func NewCatalog(constraints ...OD) *Catalog {
	c := catalog.New()
	c.Add(constraints...)
	return c
}
