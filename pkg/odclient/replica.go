package odclient

import (
	"context"
	"errors"
	"net/http"
	"strings"
)

// WithReplicas gives the client read replicas (follower odserve daemons) to
// fan read traffic to: proves, batch proves, listings, rewrites and
// generation polls round-robin across the replicas; mutations, snapshots and
// health checks always go to the leader. A replica that fails — transport
// error, 421, or a 503 lag refusal — costs one failover to the leader's
// normal retry path, never a retry against the same stale host, so reads
// degrade to leader latency rather than erroring.
func WithReplicas(urls ...string) Option {
	return func(o *options) {
		o.replicas = o.replicas[:0]
		for _, u := range urls {
			if u = strings.TrimRight(u, "/"); u != "" {
				o.replicas = append(o.replicas, u)
			}
		}
	}
}

// WithMaxLagRecords sets the client's own staleness bound, sent as the
// X-OD-Max-Lag-Records header on every replica read: a follower trailing its
// leader by more than n WAL records refuses with 503 (which this client turns
// into a leader failover) instead of answering from the stale set. Zero (the
// default) accepts whatever bound the follower itself is configured with.
func WithMaxLagRecords(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.maxLag = n
		}
	}
}

// IsMisdirected reports whether err is the server's 421 — the request hit a
// read-only follower that cannot serve it. The rejection names the leader:
// errors.As to *APIError and read its Leader field.
func IsMisdirected(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusMisdirectedRequest
}

// failover reports whether a replica read's failure should fall over to the
// leader: transport errors and anything the follower itself refused (421
// mutations-go-elsewhere, 503 over-lag, 5xx, 429) do; a definitive client
// error (bad statement, unknown schema) is the request's own fault and would
// fail identically on the leader, and a dead context has nobody waiting.
func failover(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusMisdirectedRequest ||
			ae.Status == http.StatusTooManyRequests ||
			ae.Status >= 500
	}
	return true
}

// doRead routes one read request: with no replicas configured it is exactly
// do(). Otherwise one replica (round-robin) gets one attempt; if that replica
// cannot answer, the read falls over to the leader's full retry path. One
// attempt per read keeps tail latency bounded — the leader is the fallback,
// not a second replica that may be just as stale.
func (c *Client) doRead(ctx context.Context, method, path string, in, out any) error {
	if len(c.o.replicas) == 0 {
		return c.do(ctx, method, path, in, out)
	}
	body, err := marshalBody(in)
	if err != nil {
		return err
	}
	idx := int(c.replicaRR.Add(1)-1) % len(c.o.replicas)
	c.stats.replicaReads.Add(1)
	obs(c.met.replicaReads, 1)
	rerr := c.doOnce(ctx, c.o.replicas[idx], method, path, body, out, true)
	if rerr == nil {
		return nil
	}
	if !failover(rerr) || ctx.Err() != nil {
		return rerr
	}
	c.stats.replicaFailovers.Add(1)
	obs(c.met.replicaFailovers, 1)
	return c.do(ctx, method, path, in, out)
}
