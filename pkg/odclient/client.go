package odclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"odlib/internal/core"
)

// ErrClosed is returned by calls made after Close.
var ErrClosed = errors.New("odclient: client is closed")

// APIError is a non-2xx answer from the daemon, carrying the HTTP status and
// the server's {"error": ...} message. Follower refusals (421 misdirected
// mutations, 503 over-lag reads) also carry the leader's URL in Leader, so a
// caller holding only a replica address can still find the write path.
type APIError struct {
	Status  int
	Message string
	Leader  string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("odclient: server answered %d: %s", e.Status, e.Message)
}

// IsProveTimeout reports whether err is the server's 504 — the configured
// -prove-timeout expired before the pattern search finished. Retrying the
// same statement will almost certainly time out again, so the client never
// retries these; callers may re-ask with a smaller question instead.
func IsProveTimeout(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusGatewayTimeout
}

// Verdict is one statement's implication answer.
type Verdict struct {
	Statement string `json:"statement"`
	// Schema is the shard that answered — the resolved shard, which may
	// differ from the requested schema when the server derives shards from
	// attribute prefixes.
	Schema  string `json:"schema"`
	Implied bool   `json:"implied"`
	// Generation stamps the constraint set the verdict was computed under;
	// the cache keys its validity on it.
	Generation uint64   `json:"generation"`
	Witness    *Witness `json:"witness,omitempty"`
}

// Witness is a two-row counterexample projected onto its discriminating
// attributes, as served by the daemon.
type Witness struct {
	Pattern string            `json:"pattern"`
	Signs   map[string]string `json:"signs"`
	Rows    [][]int64         `json:"rows"`
	Attrs   []string          `json:"attrs"`
}

// Relation materializes the witness as a two-row core.Relation that
// satisfies the declared constraints and falsifies the refuted statement.
func (w *Witness) Relation() (*core.Relation, error) {
	attrs := make(core.List, len(w.Attrs))
	for i, a := range w.Attrs {
		attrs[i] = core.Attribute(a)
	}
	rel, err := core.NewRelation(attrs)
	if err != nil {
		return nil, err
	}
	for _, row := range w.Rows {
		if err := rel.AddIntRow(row...); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// Mutation is one shard's outcome of a declare/remove, mirroring the
// daemon's mutation response.
type Mutation struct {
	Schema     string `json:"schema"`
	Added      int    `json:"added"`
	Removed    int    `json:"removed"`
	Declared   int    `json:"declared"`
	Closure    int    `json:"closure"`
	Generation uint64 `json:"generation"`
	Seq        uint64 `json:"seq"`
}

// Listing is one shard's declared set and closure at a generation.
type Listing struct {
	Schema     string   `json:"schema"`
	Generation uint64   `json:"generation"`
	Declared   []string `json:"declared"`
	Closure    []string `json:"closure"`
}

// RewriteResult is the daemon's ReduceOrder⁺/ReduceGroupBy answer.
type RewriteResult struct {
	Input      string `json:"input"`
	Reduced    string `json:"reduced"`
	Schema     string `json:"schema"`
	Generation uint64 `json:"generation"`
	Steps      []struct {
		Rule    string `json:"rule"`
		Segment string `json:"segment"`
		Pos     int    `json:"pos"`
		By      string `json:"by"`
	} `json:"steps"`
}

// Health is the subset of /healthz a client acts on: overall liveness and
// each shard's generation (used to invalidate cached verdicts).
type Health struct {
	OK          bool
	Generations map[string]uint64
}

// Stats are cumulative client-side counters; read them with Stats().
type Stats struct {
	// Proves counts Prove calls; CacheHits of them were answered from the
	// verdict cache and CoalesceJoins joined another caller's in-flight
	// request — neither reached the wire.
	Proves        uint64
	CacheHits     uint64
	CoalesceJoins uint64
	// HTTPRequests counts requests actually sent (each retry attempt is
	// one); Retries counts re-attempts after a retryable failure.
	HTTPRequests uint64
	Retries      uint64
	// PipelineBatches counts flushes, PipelineStatements the statements
	// they carried; their ratio is the amortization the pipeliner bought.
	PipelineBatches    uint64
	PipelineStatements uint64
	// GenerationPolls counts GET /generation revalidations issued by the
	// cache's staleness bound.
	GenerationPolls uint64
	// ReplicaReads counts reads routed to a configured replica;
	// ReplicaFailovers of them could not be answered there (transport error,
	// lag refusal) and fell over to the leader.
	ReplicaReads     uint64
	ReplicaFailovers uint64
}

type statsCounters struct {
	proves, cacheHits, coalesceJoins    atomic.Uint64
	httpRequests, retries               atomic.Uint64
	pipelineBatches, pipelineStatements atomic.Uint64
	generationPolls                     atomic.Uint64
	replicaReads, replicaFailovers      atomic.Uint64
}

type options struct {
	hc             *http.Client
	coalesce       bool
	pipeWindow     time.Duration
	pipeMaxBatch   int
	cacheCap       int
	cacheMaxAge    time.Duration
	retries        int
	retryBackoff   time.Duration
	requestTimeout time.Duration
	metrics        MetricsRegistry
	replicas       []string
	maxLag         int
}

// Option configures a Client.
type Option func(*options)

// WithHTTPClient substitutes the underlying *http.Client (e.g. an
// httptest.Server's client in tests). The default is a fresh client with no
// global timeout — per-call contexts bound every request.
func WithHTTPClient(hc *http.Client) Option {
	return func(o *options) { o.hc = hc }
}

// WithCoalescing toggles per-OD-key singleflight coalescing of concurrent
// identical Prove calls. On by default: it changes no semantics, only
// collapses duplicate in-flight work.
func WithCoalescing(on bool) Option {
	return func(o *options) { o.coalesce = on }
}

// WithPipelining turns on the background batch pipeliner: individual Prove,
// Declare and Remove calls accumulate for up to window (or maxBatch
// statements, whichever first) and flush through /prove/batch and
// /ods/batch. Callers still block until their own statement's answer is
// back; what changes is that a burst shares one round trip, one shard
// snapshot and one WAL group commit. window <= 0 or maxBatch <= 1 disable.
//
// A pipelined request runs under the client's request timeout rather than
// the submitting caller's context: the flushed batch is shared work, and one
// caller hanging up must not abort everyone else's statements. A caller
// whose context dies stops waiting immediately; its statement's answer still
// lands in the verdict cache for the next asker.
func WithPipelining(window time.Duration, maxBatch int) Option {
	return func(o *options) { o.pipeWindow, o.pipeMaxBatch = window, maxBatch }
}

// WithCache enables the bounded-staleness verdict cache: up to capacity
// verdicts, each keyed by the generation the server stamped it with. A hit
// is served only when its generation still equals the shard's current one;
// the client's view of "current" is refreshed by every response it sees and,
// when that view is older than maxAge, by a GET /generation poll before the
// hit is trusted. maxAge 0 polls before every hit — still far cheaper than
// re-proving; maxAge < 0 disables the staleness bound entirely (trust the
// last observed generation indefinitely, suitable when this client is the
// only mutator).
func WithCache(capacity int, maxAge time.Duration) Option {
	return func(o *options) { o.cacheCap, o.cacheMaxAge = capacity, maxAge }
}

// WithRetry configures transport-failure handling: up to retries
// re-attempts with exponential backoff starting at backoff. Only transport
// errors and 502/503 answers are retried — 4xx are the request's own fault,
// 504 is a prove deadline (see IsProveTimeout), and a dead context is never
// retried.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(o *options) { o.retries, o.retryBackoff = retries, backoff }
}

// WithRequestTimeout bounds each background (pipelined) HTTP request, which
// has no caller context to inherit. Direct calls are bounded by their own
// context only. Default 30s.
func WithRequestTimeout(d time.Duration) Option {
	return func(o *options) { o.requestTimeout = d }
}

// Client talks to an odserve daemon. All methods are safe for concurrent
// use; a Client is intended to be shared process-wide, since sharing is
// what makes coalescing, pipelining and the verdict cache effective.
type Client struct {
	base  string
	hc    *http.Client
	o     options
	stats statsCounters
	met   clientMetrics

	gens   *generations
	cache  *verdictCache // nil when disabled
	flight *flightGroup  // nil when coalescing disabled
	pipe   *pipeliner    // nil when pipelining disabled

	replicaRR atomic.Uint64 // round-robin cursor over o.replicas
	closed    atomic.Bool
}

// New builds a client for the daemon at baseURL (e.g. "http://localhost:8080").
// Close it when done to flush and stop the pipeliner.
func New(baseURL string, opts ...Option) (*Client, error) {
	if baseURL == "" {
		return nil, errors.New("odclient: empty base URL")
	}
	o := options{
		coalesce:       true,
		retryBackoff:   50 * time.Millisecond,
		requestTimeout: 30 * time.Second,
	}
	for _, f := range opts {
		f(&o)
	}
	if o.hc == nil {
		o.hc = &http.Client{}
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   o.hc,
		o:    o,
		met:  newClientMetrics(o.metrics),
		gens: newGenerations(),
	}
	if o.cacheCap > 0 {
		c.cache = newVerdictCache(o.cacheCap)
	}
	if o.coalesce {
		c.flight = newFlightGroup()
	}
	if o.pipeWindow > 0 && o.pipeMaxBatch > 1 {
		c.pipe = newPipeliner(c, o.pipeWindow, o.pipeMaxBatch)
	}
	return c, nil
}

// Close flushes and stops the background pipeliner. In-flight calls finish;
// calls made after Close fail with ErrClosed.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	if c.pipe != nil {
		c.pipe.stop()
	}
	return nil
}

// Stats returns a point-in-time copy of the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Proves:             c.stats.proves.Load(),
		CacheHits:          c.stats.cacheHits.Load(),
		CoalesceJoins:      c.stats.coalesceJoins.Load(),
		HTTPRequests:       c.stats.httpRequests.Load(),
		Retries:            c.stats.retries.Load(),
		PipelineBatches:    c.stats.pipelineBatches.Load(),
		PipelineStatements: c.stats.pipelineStatements.Load(),
		GenerationPolls:    c.stats.generationPolls.Load(),
		ReplicaReads:       c.stats.replicaReads.Load(),
		ReplicaFailovers:   c.stats.replicaFailovers.Load(),
	}
}

// proveKey canonicalizes a statement into the coalescing/cache key: the
// parsed ODs' canonical keys, so textual variants of the same question
// ("[a]->[b]" vs "[a] -> [b]") collapse.
func proveKey(schema string, ods []core.OD) string {
	var b strings.Builder
	b.WriteString(schema)
	for _, od := range ods {
		b.WriteByte(0)
		b.WriteString(od.Key())
	}
	return b.String()
}

// Prove decides catalog ⊨ statement on the schema's shard. The full client
// path applies: verdict cache, then singleflight coalescing with concurrent
// identical calls, then the batch pipeliner (when enabled), then the wire.
// A direct (unpipelined) request is cancelled when ctx dies, aborting the
// server-side search; see WithPipelining for the pipelined contract.
func (c *Client) Prove(ctx context.Context, schema, statement string) (Verdict, error) {
	if c.closed.Load() {
		return Verdict{}, ErrClosed
	}
	c.stats.proves.Add(1)
	obs(c.met.proves, 1)
	ods, err := core.ParseStatement(statement)
	if err != nil {
		return Verdict{}, fmt.Errorf("odclient: %w", err)
	}
	key := proveKey(schema, ods)
	if v, ok := c.cacheGet(ctx, key); ok {
		return v, nil
	}
	if c.flight == nil {
		return c.proveFetch(ctx, schema, statement, key)
	}
	return c.flight.do(ctx, key, func(fctx context.Context) (Verdict, error) {
		// Re-check the cache under the flight: an earlier leader or a batch
		// flush may have filled it while this caller queued.
		if v, ok := c.cacheGet(fctx, key); ok {
			return v, nil
		}
		return c.proveFetch(fctx, schema, statement, key)
	}, func() {
		c.stats.coalesceJoins.Add(1)
		obs(c.met.coalesceJoins, 1)
	})
}

// proveFetch asks the daemon: through the pipeliner when one runs, else a
// direct POST /prove.
func (c *Client) proveFetch(ctx context.Context, schema, statement, key string) (Verdict, error) {
	if c.pipe != nil {
		return c.pipe.prove(ctx, schema, statement, key)
	}
	var resp struct {
		Verdict
		Error string `json:"error,omitempty"`
	}
	err := c.doRead(ctx, http.MethodPost, "/prove",
		map[string]string{"schema": schema, "statement": statement}, &resp)
	if err != nil {
		return Verdict{}, err
	}
	if resp.Error != "" {
		return Verdict{}, fmt.Errorf("odclient: prove %q: %s", statement, resp.Error)
	}
	c.observe(resp.Verdict.Schema, resp.Verdict.Generation)
	c.cachePut(key, resp.Verdict)
	return resp.Verdict, nil
}

// ProveBatch decides many statements in one explicit /prove/batch request,
// bypassing the pipeliner (the caller has already batched). Verdicts come
// back in statement order. Statements that failed individually (the server
// answers them in place without failing the batch) keep their Statement
// field set but are otherwise zero; every such failure is reported in the
// returned error, joined and labeled with its statement index, alongside
// the verdicts of the statements that succeeded.
func (c *Client) ProveBatch(ctx context.Context, schema string, statements []string) ([]Verdict, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	results, err := c.proveBatchWire(ctx, schema, statements)
	if err != nil {
		return nil, err
	}
	out := make([]Verdict, len(results))
	var errs []error
	for i, r := range results {
		if r.Error != "" {
			errs = append(errs, fmt.Errorf("odclient: statement %d %q: %s", i, statements[i], r.Error))
			out[i] = Verdict{Statement: statements[i]}
			continue
		}
		if ods, perr := core.ParseStatement(statements[i]); perr == nil {
			c.cachePut(proveKey(schema, ods), r.Verdict)
		}
		out[i] = r.Verdict
	}
	return out, errors.Join(errs...)
}

// wireVerdict is one /prove/batch result slot: a verdict or a
// statement-level error.
type wireVerdict struct {
	Verdict
	Error string `json:"error,omitempty"`
}

// proveBatchWire is the raw /prove/batch round trip, shared by ProveBatch
// and the pipeliner's flush (which must keep working while Close drains).
// Generations are observed; the cache is NOT filled here — callers decide
// which statements map to which cache keys.
func (c *Client) proveBatchWire(ctx context.Context, schema string, statements []string) ([]wireVerdict, error) {
	var resp struct {
		Results []wireVerdict `json:"results"`
	}
	err := c.doRead(ctx, http.MethodPost, "/prove/batch",
		map[string]any{"schema": schema, "statements": statements}, &resp)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(statements) {
		return nil, fmt.Errorf("odclient: %d results for %d statements", len(resp.Results), len(statements))
	}
	for _, r := range resp.Results {
		if r.Error == "" {
			c.observe(r.Verdict.Schema, r.Verdict.Generation)
		}
	}
	return resp.Results, nil
}

// Declare declares OD statements on the schema's shard. With pipelining on,
// the statements join the current batch window and the call returns once
// the flushed mutation is durable; without, it is one direct /ods/batch
// round trip. Either way the server acknowledges only after the WAL commit.
func (c *Client) Declare(ctx context.Context, schema string, statements ...string) error {
	return c.mutateStmts(ctx, schema, statements, nil)
}

// Remove withdraws OD statements, with the same batching contract as
// Declare.
func (c *Client) Remove(ctx context.Context, schema string, statements ...string) error {
	return c.mutateStmts(ctx, schema, nil, statements)
}

func (c *Client) mutateStmts(ctx context.Context, schema string, declare, remove []string) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if len(declare)+len(remove) == 0 {
		return errors.New("odclient: no statements given")
	}
	// Validate client-side before enqueueing: a pipelined flush merges many
	// callers' statements into one /ods/batch, and the server rejects a
	// batch wholesale on any parse error — one caller's typo must not
	// poison everyone else's window.
	for _, stmts := range [][]string{declare, remove} {
		for _, s := range stmts {
			if _, err := core.ParseStatement(s); err != nil {
				return fmt.Errorf("odclient: %w", err)
			}
		}
	}
	if c.pipe != nil {
		return c.pipe.mutate(ctx, schema, declare, remove)
	}
	_, err := c.Mutate(ctx, schema, declare, remove)
	return err
}

// Mutate is the explicit one-shot /ods/batch call: declare and withdraw in
// one shard mutation, returning per-shard outcomes. It bypasses the
// pipeliner; use it when the exact added/removed counts matter.
func (c *Client) Mutate(ctx context.Context, schema string, declare, remove []string) (map[string]Mutation, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	return c.mutateWire(ctx, schema, declare, remove)
}

// mutateWire is the raw /ods/batch round trip, shared by Mutate and the
// pipeliner's flush.
func (c *Client) mutateWire(ctx context.Context, schema string, declare, remove []string) (map[string]Mutation, error) {
	var resp struct {
		Shards map[string]Mutation `json:"shards"`
	}
	err := c.do(ctx, http.MethodPost, "/ods/batch",
		map[string]any{"schema": schema, "declare": declare, "remove": remove}, &resp)
	if err != nil {
		return nil, err
	}
	for name, m := range resp.Shards {
		c.observe(name, m.Generation)
	}
	return resp.Shards, nil
}

// Listing fetches one shard's declared ODs and closure.
func (c *Client) Listing(ctx context.Context, schema string) (Listing, error) {
	if c.closed.Load() {
		return Listing{}, ErrClosed
	}
	var out Listing
	if err := c.doRead(ctx, http.MethodGet, "/ods?schema="+schema, nil, &out); err != nil {
		return Listing{}, err
	}
	c.observe(out.Schema, out.Generation)
	return out, nil
}

// Rewrite runs the daemon-side ReduceOrder⁺ on an ORDER BY list (statement
// syntax, e.g. "[year, quarter, month]").
func (c *Client) Rewrite(ctx context.Context, schema, order string) (RewriteResult, error) {
	return c.rewrite(ctx, map[string]string{"schema": schema, "order": order})
}

// RewriteGroupBy runs the daemon-side GROUP BY reduction.
func (c *Client) RewriteGroupBy(ctx context.Context, schema, group string) (RewriteResult, error) {
	return c.rewrite(ctx, map[string]string{"schema": schema, "groupBy": group})
}

func (c *Client) rewrite(ctx context.Context, req map[string]string) (RewriteResult, error) {
	if c.closed.Load() {
		return RewriteResult{}, ErrClosed
	}
	var out RewriteResult
	if err := c.doRead(ctx, http.MethodPost, "/rewrite", req, &out); err != nil {
		return RewriteResult{}, err
	}
	c.observe(out.Schema, out.Generation)
	return out, nil
}

// Generations polls GET /generation — the cheapest staleness check — and
// folds the answer into the client's generation view, revalidating (or
// invalidating) every cached verdict in one round trip.
func (c *Client) Generations(ctx context.Context) (map[string]uint64, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	var resp struct {
		Shards map[string]uint64 `json:"shards"`
	}
	if err := c.doRead(ctx, http.MethodGet, "/generation", nil, &resp); err != nil {
		return nil, err
	}
	for name, gen := range resp.Shards {
		c.observe(name, gen)
	}
	return resp.Shards, nil
}

// Healthz scrapes /healthz, folding each shard's generation into the
// client's view exactly like Generations. It reports OK even when the
// daemon answers 503 — unhealth is data here, not a transport failure.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	if c.closed.Load() {
		return Health{}, ErrClosed
	}
	var resp struct {
		OK     bool `json:"ok"`
		Shards map[string]struct {
			Catalog struct {
				Generation uint64 `json:"generation"`
			} `json:"catalog"`
		} `json:"shards"`
	}
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp)
	var ae *APIError
	if err != nil && !(errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable) {
		return Health{}, err
	}
	h := Health{OK: resp.OK, Generations: make(map[string]uint64, len(resp.Shards))}
	for name, sh := range resp.Shards {
		h.Generations[name] = sh.Catalog.Generation
		c.observe(name, sh.Catalog.Generation)
	}
	return h, nil
}

// observe folds a generation stamp seen on any response into the client's
// per-shard view.
func (c *Client) observe(schema string, gen uint64) {
	c.gens.observe(schema, gen)
}

// cacheGet serves a still-valid cached verdict. Validity is generation
// equality against the client's view of the entry's shard; when that view
// is older than the staleness bound, one GET /generation refreshes it
// first. Entries that lost their generation are evicted on the way out.
func (c *Client) cacheGet(ctx context.Context, key string) (Verdict, bool) {
	if c.cache == nil {
		return Verdict{}, false
	}
	v, ok := c.cache.get(key)
	if !ok {
		return Verdict{}, false
	}
	gen, seen, known := c.gens.current(v.Schema)
	if !known {
		return Verdict{}, false
	}
	if c.o.cacheMaxAge >= 0 && time.Since(seen) > c.o.cacheMaxAge {
		c.stats.generationPolls.Add(1)
		obs(c.met.generationPolls, 1)
		if _, err := c.Generations(ctx); err != nil {
			return Verdict{}, false
		}
		gen, _, known = c.gens.current(v.Schema)
		if !known {
			return Verdict{}, false
		}
	}
	if v.Generation != gen {
		c.cache.evict(key)
		return Verdict{}, false
	}
	c.stats.cacheHits.Add(1)
	obs(c.met.cacheHits, 1)
	return v, true
}

func (c *Client) cachePut(key string, v Verdict) {
	if c.cache != nil {
		c.cache.put(key, v)
	}
}

// retryable reports whether an attempt's failure is worth a re-send against
// the SAME host: transport errors, 502/503 answers, and 429 (the daemon
// shedding declares under compaction backpressure — explicitly transient, the
// response says Retry-After) are; anything else the server decided (4xx, 500,
// 504) and any form of cancellation is not. 421 in particular is never
// retryable here: a follower answering "misdirected, go to the leader" will
// answer it identically forever — re-sending to the same host only burns the
// retry budget (failover is doRead's job, not do's).
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Status == http.StatusMisdirectedRequest {
			return false
		}
		return ae.Status == http.StatusBadGateway ||
			ae.Status == http.StatusServiceUnavailable ||
			ae.Status == http.StatusTooManyRequests
	}
	return true
}

func marshalBody(in any) ([]byte, error) {
	if in == nil {
		return nil, nil
	}
	return json.Marshal(in)
}

// do sends one JSON request to the leader, decodes the JSON answer into out,
// and retries retryable failures per WithRetry. The context bounds all
// attempts and the backoff sleeps between them.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	body, err := marshalBody(in)
	if err != nil {
		return err
	}
	backoff := c.o.retryBackoff
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, c.base, method, path, body, out, false)
		if err == nil || attempt >= c.o.retries || !retryable(err) || ctx.Err() != nil {
			return err
		}
		c.stats.retries.Add(1)
		obs(c.met.retries, 1)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff *= 2
	}
}

// doOnce sends one request to the host at base. Replica reads carry the
// client's staleness bound so an over-stale follower refuses instead of
// answering wrong-by-omission.
func (c *Client) doOnce(ctx context.Context, base, method, path string, body []byte, out any, replica bool) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if replica && c.o.maxLag > 0 {
		req.Header.Set("X-OD-Max-Lag-Records", strconv.Itoa(c.o.maxLag))
	}
	c.stats.httpRequests.Add(1)
	obs(c.met.httpRequests, 1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		msg := resp.Status
		var we struct {
			Error  string `json:"error"`
			Leader string `json:"leader"`
		}
		if json.Unmarshal(b, &we) == nil && we.Error != "" {
			msg = we.Error
		} else if out != nil {
			// /healthz carries its full payload on a 503; hand it to callers
			// alongside the APIError so unhealth remains inspectable data.
			_ = json.Unmarshal(b, out)
		}
		return &APIError{Status: resp.StatusCode, Message: msg, Leader: we.Leader}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
