package odclient

// MetricsRegistry is the minimal metric-construction surface the client
// exports its counters through: ask for a counter or histogram by name, get
// back an observation function. It is satisfied structurally by
// odlib/internal/metrics.Registry (odserve's own registry — handy when the
// client runs in the same process, as odbench does) and trivially adaptable
// to any other metrics library. Every series is created at client
// construction, so a scrape sees the full set at zero before traffic.
type MetricsRegistry interface {
	// Counter registers (or looks up) a monotonic counter and returns its
	// add function; calls with the same name must return an equivalent add.
	Counter(name, help string) func(float64)
	// Histogram registers a fixed-bucket histogram and returns its observe
	// function.
	Histogram(name, help string, buckets []float64) func(float64)
}

// WithMetrics exports the client's cumulative counters — the same numbers
// Stats() reports — through reg as odclient_* series, plus a histogram of
// pipelined flush sizes. Nil disables (the default).
func WithMetrics(reg MetricsRegistry) Option {
	return func(o *options) { o.metrics = reg }
}

// flushSizeBuckets sizes the flush-statements histogram: powers of two up to
// the largest batch a sane pipeliner window accumulates.
var flushSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// clientMetrics holds the observation functions; all fields are nil when no
// registry is hooked, making every observation a nil check and nothing more.
type clientMetrics struct {
	proves           func(float64)
	cacheHits        func(float64)
	coalesceJoins    func(float64)
	httpRequests     func(float64)
	retries          func(float64)
	generationPolls  func(float64)
	flushBatches     func(float64)
	flushStatements  func(float64) // histogram: statements per flushed batch
	replicaReads     func(float64)
	replicaFailovers func(float64)
}

func newClientMetrics(reg MetricsRegistry) clientMetrics {
	if reg == nil {
		return clientMetrics{}
	}
	return clientMetrics{
		proves:           reg.Counter("odclient_proves_total", "Prove calls made through this client."),
		cacheHits:        reg.Counter("odclient_cache_hits_total", "Prove calls answered from the generation-keyed verdict cache."),
		coalesceJoins:    reg.Counter("odclient_coalesce_joins_total", "Prove calls that joined another caller's in-flight request."),
		httpRequests:     reg.Counter("odclient_http_requests_total", "HTTP requests actually sent (each retry attempt is one)."),
		retries:          reg.Counter("odclient_retries_total", "Re-attempts after retryable failures."),
		generationPolls:  reg.Counter("odclient_generation_polls_total", "GET /generation revalidations issued by the cache's staleness bound."),
		flushBatches:     reg.Counter("odclient_flush_batches_total", "Pipelined batch requests flushed."),
		flushStatements:  reg.Histogram("odclient_flush_statements", "Statements carried per pipelined flush request.", flushSizeBuckets),
		replicaReads:     reg.Counter("odclient_replica_reads_total", "Reads routed to a configured replica."),
		replicaFailovers: reg.Counter("odclient_replica_failovers_total", "Replica reads that fell over to the leader."),
	}
}

// obs invokes an observation function when one is installed.
func obs(f func(float64), v float64) {
	if f != nil {
		f(v)
	}
}
