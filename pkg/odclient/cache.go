package odclient

import (
	"container/list"
	"sync"
	"time"
)

// generations is the client's view of each shard's constraint generation:
// the highest stamp seen on any response, plus when it was last confirmed.
// The verdict cache keys validity on this view — equal generation means the
// shard saw no effective mutation since the verdict was computed, which is
// exactly the server's own memo-invalidation rule, observed from outside.
type generations struct {
	mu   sync.Mutex
	gen  map[string]uint64
	seen map[string]time.Time
}

func newGenerations() *generations {
	return &generations{gen: make(map[string]uint64), seen: make(map[string]time.Time)}
}

// observe folds a stamp into the view. A newer generation advances it; an
// equal one refreshes the confirmation time; an older one (a response that
// raced a mutation) is ignored — the view must be monotone or a stale
// response could resurrect dead cache entries.
func (g *generations) observe(schema string, gen uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cur, ok := g.gen[schema]; !ok || gen > cur {
		g.gen[schema] = gen
		g.seen[schema] = time.Now()
	} else if gen == cur {
		g.seen[schema] = time.Now()
	}
}

// current returns the shard's generation, when it was last confirmed, and
// whether the shard has been seen at all.
func (g *generations) current(schema string) (uint64, time.Time, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	gen, ok := g.gen[schema]
	return gen, g.seen[schema], ok
}

// verdictCache is a bounded LRU of generation-stamped verdicts. Entries are
// not expired by time — staleness is governed by generation comparison in
// Client.cacheGet, with the confirmation age only deciding whether a
// /generation poll is due first.
type verdictCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	v   Verdict
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

func (vc *verdictCache) get(key string) (Verdict, bool) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	el, ok := vc.entries[key]
	if !ok {
		return Verdict{}, false
	}
	vc.order.MoveToFront(el)
	return el.Value.(*cacheEntry).v, true
}

func (vc *verdictCache) put(key string, v Verdict) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if el, ok := vc.entries[key]; ok {
		el.Value.(*cacheEntry).v = v
		vc.order.MoveToFront(el)
		return
	}
	vc.entries[key] = vc.order.PushFront(&cacheEntry{key: key, v: v})
	for vc.order.Len() > vc.cap {
		last := vc.order.Back()
		vc.order.Remove(last)
		delete(vc.entries, last.Value.(*cacheEntry).key)
	}
}

func (vc *verdictCache) evict(key string) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if el, ok := vc.entries[key]; ok {
		vc.order.Remove(el)
		delete(vc.entries, key)
	}
}

// len reports resident entries (tests).
func (vc *verdictCache) len() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.order.Len()
}
