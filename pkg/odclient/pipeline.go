package odclient

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// pipeliner is the client-side half of the /prove/batch amortization:
// individual Prove/Declare/Remove calls from many goroutines accumulate in
// one background loop for up to a window (or a statement budget) and flush
// as per-schema batch requests — one round trip, one shard snapshot, one WAL
// group commit for the whole burst, exactly the economy odbench -experiment
// batch measures server-side, now available to callers that cannot batch by
// hand because their statements originate in independent optimizer sessions.
//
// The jobs channel is unbuffered on purpose: an enqueue blocks until the
// loop has the job in hand, so stop() can never strand a submitted job in a
// channel buffer — everything accepted is flushed or answered ErrClosed.
type pipeliner struct {
	c        *Client
	window   time.Duration
	maxBatch int

	jobs chan any // *proveJob | *mutJob
	quit chan struct{}
	done chan struct{}
	// flights tracks dispatched flush goroutines: a slow batch round trip
	// must not block the accumulation loop (head-of-line latency for the
	// next window), so flushes run concurrently and stop() drains them.
	flights sync.WaitGroup
}

type proveOutcome struct {
	v   Verdict
	err error
}

type proveJob struct {
	schema, statement, key string
	res                    chan proveOutcome // buffered 1: flush never blocks on a gone caller
}

type mutJob struct {
	schema          string
	declare, remove []string
	res             chan error // buffered 1
}

func newPipeliner(c *Client, window time.Duration, maxBatch int) *pipeliner {
	p := &pipeliner{
		c:        c,
		window:   window,
		maxBatch: maxBatch,
		jobs:     make(chan any),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.loop()
	return p
}

// stop drains: pending jobs are dispatched, the loop exits, and every
// in-flight flush completes. Enqueues racing the close are answered
// ErrClosed.
func (p *pipeliner) stop() {
	close(p.quit)
	<-p.done
	p.flights.Wait()
}

// prove submits one statement and blocks until its batch flushes or ctx
// dies. An abandoning caller stops waiting; the statement stays in the batch
// and its verdict lands in the cache for the next asker.
func (p *pipeliner) prove(ctx context.Context, schema, statement, key string) (Verdict, error) {
	j := &proveJob{schema: schema, statement: statement, key: key, res: make(chan proveOutcome, 1)}
	select {
	case p.jobs <- j:
	case <-p.quit:
		return Verdict{}, ErrClosed
	case <-ctx.Done():
		return Verdict{}, ctx.Err()
	}
	select {
	case o := <-j.res:
		return o.v, o.err
	case <-ctx.Done():
		return Verdict{}, ctx.Err()
	}
}

// mutate submits declares/removes and blocks until the flushed mutation is
// durable (the batch response arrived) or ctx dies.
func (p *pipeliner) mutate(ctx context.Context, schema string, declare, remove []string) error {
	j := &mutJob{schema: schema, declare: declare, remove: remove, res: make(chan error, 1)}
	select {
	case p.jobs <- j:
	case <-p.quit:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-j.res:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *pipeliner) loop() {
	defer close(p.done)
	timer := time.NewTimer(p.window)
	if !timer.Stop() {
		<-timer.C
	}
	var proves []*proveJob
	var muts []*mutJob
	pending := 0 // statements accumulated, across both job kinds
	disarm := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	flush := func() {
		if pending == 0 {
			return
		}
		pr, mu := proves, muts
		proves, muts, pending = nil, nil, 0
		p.flights.Add(1)
		go func() {
			defer p.flights.Done()
			p.flush(pr, mu)
		}()
	}
	for {
		var timerC <-chan time.Time
		if pending > 0 {
			timerC = timer.C
		}
		select {
		case j := <-p.jobs:
			if pending == 0 {
				disarm()
				timer.Reset(p.window)
			}
			switch j := j.(type) {
			case *proveJob:
				proves = append(proves, j)
				pending++
			case *mutJob:
				muts = append(muts, j)
				pending += len(j.declare) + len(j.remove)
			}
			if pending >= p.maxBatch {
				disarm()
				flush()
			}
		case <-timerC:
			flush()
		case <-p.quit:
			flush()
			return
		}
	}
}

// flush sends the accumulated batch: mutations first (a caller that
// declared then proved in sequence already has its declare durable, but
// within one window the friendly order is constraints before questions),
// then proves — each grouped by schema, one request per schema per kind.
// Flush requests carry the client's request timeout, not any caller's
// context: the batch is shared work.
func (p *pipeliner) flush(proves []*proveJob, muts []*mutJob) {
	ctx, cancel := context.WithTimeout(context.Background(), p.c.o.requestTimeout)
	defer cancel()

	if len(muts) > 0 {
		type mgroup struct {
			declare, remove []string
			jobs            []*mutJob
		}
		groups := map[string]*mgroup{}
		var order []string
		for _, j := range muts {
			g, ok := groups[j.schema]
			if !ok {
				g = &mgroup{}
				groups[j.schema] = g
				order = append(order, j.schema)
			}
			g.declare = append(g.declare, j.declare...)
			g.remove = append(g.remove, j.remove...)
			g.jobs = append(g.jobs, j)
		}
		for _, schema := range order {
			g := groups[schema]
			p.c.stats.pipelineBatches.Add(1)
			p.c.stats.pipelineStatements.Add(uint64(len(g.declare) + len(g.remove)))
			obs(p.c.met.flushBatches, 1)
			obs(p.c.met.flushStatements, float64(len(g.declare)+len(g.remove)))
			_, err := p.c.mutateWire(ctx, schema, g.declare, g.remove)
			for _, j := range g.jobs {
				j.res <- err
			}
		}
	}

	if len(proves) > 0 {
		type pgroup struct {
			statements []string
			jobs       []*proveJob
		}
		groups := map[string]*pgroup{}
		var order []string
		for _, j := range proves {
			g, ok := groups[j.schema]
			if !ok {
				g = &pgroup{}
				groups[j.schema] = g
				order = append(order, j.schema)
			}
			g.statements = append(g.statements, j.statement)
			g.jobs = append(g.jobs, j)
		}
		for _, schema := range order {
			g := groups[schema]
			p.c.stats.pipelineBatches.Add(1)
			p.c.stats.pipelineStatements.Add(uint64(len(g.statements)))
			obs(p.c.met.flushBatches, 1)
			obs(p.c.met.flushStatements, float64(len(g.statements)))
			results, err := p.c.proveBatchWire(ctx, schema, g.statements)
			for i, j := range g.jobs {
				if err != nil {
					j.res <- proveOutcome{err: err}
					continue
				}
				r := results[i]
				if r.Error != "" {
					j.res <- proveOutcome{err: fmt.Errorf("odclient: prove %q: %s", j.statement, r.Error)}
					continue
				}
				p.c.cachePut(j.key, r.Verdict)
				j.res <- proveOutcome{v: r.Verdict}
			}
		}
	}
}
