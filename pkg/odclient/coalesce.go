package odclient

import (
	"context"
	"sync"
)

// flightGroup collapses concurrent identical Prove calls into one in-flight
// fetch — singleflight keyed by the canonical OD key. Unlike the classic
// x/sync singleflight, waiters are refcounted against the fetch: each caller
// that abandons (its context dies) decrements, and when the last one leaves
// the underlying fetch is cancelled, so a question nobody is waiting on
// stops burning server-side search nodes — the same contract the daemon has
// with a disconnected HTTP client, kept intact through the extra layer.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	ctx     context.Context
	cancel  context.CancelFunc
	waiters int
	done    chan struct{}
	v       Verdict
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fetch once per key: the first caller becomes the leader and spawns
// the fetch under a refcount-cancelled context; later callers with the same
// key join its result (reported through onJoin). Every caller waits on its
// own ctx, so one slow waiter never holds up another's cancellation.
func (g *flightGroup) do(ctx context.Context, key string,
	fetch func(context.Context) (Verdict, error), onJoin func()) (Verdict, error) {
	g.mu.Lock()
	if cl, ok := g.calls[key]; ok {
		cl.waiters++
		g.mu.Unlock()
		onJoin()
		return g.wait(ctx, key, cl)
	}
	cl := &flightCall{waiters: 1, done: make(chan struct{})}
	// The fetch must not die with the leader alone — later joiners may
	// still be waiting — so it runs detached from any one caller and is
	// cancelled only when the refcount drains.
	cl.ctx, cl.cancel = context.WithCancel(context.WithoutCancel(ctx))
	g.calls[key] = cl
	g.mu.Unlock()
	go func() {
		cl.v, cl.err = fetch(cl.ctx)
		g.mu.Lock()
		if g.calls[key] == cl {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		cl.cancel()
		close(cl.done)
	}()
	return g.wait(ctx, key, cl)
}

// wait blocks until the call resolves or the caller's own context dies; an
// abandoning caller releases its refcount share.
func (g *flightGroup) wait(ctx context.Context, key string, cl *flightCall) (Verdict, error) {
	select {
	case <-cl.done:
		return cl.v, cl.err
	case <-ctx.Done():
		g.mu.Lock()
		cl.waiters--
		if cl.waiters == 0 {
			// Nobody is listening: cancel the fetch and retire the call so
			// the next asker starts fresh instead of joining a corpse.
			cl.cancel()
			if g.calls[key] == cl {
				delete(g.calls, key)
			}
		}
		g.mu.Unlock()
		return Verdict{}, ctx.Err()
	}
}
