package odclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"odlib/internal/catalog"
	"odlib/internal/router"
	"odlib/internal/server"
)

// countingHandler counts requests the server actually observes — the metric
// coalescing and pipelining exist to shrink.
type countingHandler struct {
	h http.Handler
	n atomic.Int64
	// delay holds each request long enough for concurrent callers to pile
	// onto the in-flight call (coalescing tests).
	delay time.Duration
}

func (ch *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ch.n.Add(1)
	if ch.delay > 0 {
		time.Sleep(ch.delay)
	}
	ch.h.ServeHTTP(w, r)
}

// newDaemon boots a real router-backed daemon behind a request counter.
func newDaemon(t *testing.T, opt router.Options, sopts ...server.Option) (*httptest.Server, *countingHandler) {
	t.Helper()
	rt, err := router.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	ch := &countingHandler{h: server.New(rt, sopts...)}
	ts := httptest.NewServer(ch)
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return ts, ch
}

func newTestClient(t *testing.T, ts *httptest.Server, opts ...Option) *Client {
	t.Helper()
	c, err := New(ts.URL, append([]Option{WithHTTPClient(ts.Client())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func declareChain(t *testing.T, c *Client, schema string) {
	t.Helper()
	if err := c.Declare(context.Background(), schema,
		"[a] -> [b]", "[b] -> [c]", "[c] -> [d]"); err != nil {
		t.Fatal(err)
	}
}

func TestProveDirect(t *testing.T) {
	ts, _ := newDaemon(t, router.Options{})
	c := newTestClient(t, ts)
	declareChain(t, c, "")
	ctx := context.Background()

	v, err := c.Prove(ctx, "", "[a] -> [d]")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Implied || v.Generation == 0 {
		t.Fatalf("implied chain span: %+v", v)
	}

	v, err = c.Prove(ctx, "", "[d] -> [a]")
	if err != nil {
		t.Fatal(err)
	}
	if v.Implied {
		t.Fatalf("reversal should be refuted: %+v", v)
	}
	if v.Witness == nil {
		t.Fatal("refutation without witness")
	}
	rel, err := v.Witness.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("witness relation has %d rows, want 2", rel.Len())
	}

	if _, err := c.Prove(ctx, "", "not a statement"); err == nil {
		t.Fatal("malformed statement should fail client-side")
	}
}

func TestCoalescingCollapsesConcurrentProves(t *testing.T) {
	ts, ch := newDaemon(t, router.Options{})
	c := newTestClient(t, ts)
	declareChain(t, c, "")
	ch.n.Store(0)
	ch.delay = 50 * time.Millisecond

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	verdicts := make([]Verdict, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Textual variants of one question must share one flight.
			stmt := "[a] -> [c]"
			if i%2 == 1 {
				stmt = "[ a ] -> [ c ]"
			}
			verdicts[i], errs[i] = c.Prove(context.Background(), "", stmt)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
		if !verdicts[i].Implied {
			t.Fatalf("caller %d: not implied", i)
		}
	}
	// All 16 callers piled onto the ~50ms in-flight request: far fewer than
	// one wire request each. Allow a little slack for goroutine scheduling
	// (a caller may start after the first flight resolved).
	if n := ch.n.Load(); n > 3 {
		t.Fatalf("server observed %d requests for %d concurrent identical proves", n, callers)
	}
	if st := c.Stats(); st.CoalesceJoins == 0 {
		t.Fatalf("no coalesce joins recorded: %+v", st)
	}
}

func TestCoalescingCancelsWhenAllWaitersLeave(t *testing.T) {
	// A handler that blocks until the client hangs up, then signals.
	released := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/prove", func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the net/http server starts watching for a
		// client disconnect only once the request body is consumed.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			close(released)
		case <-time.After(5 * time.Second):
			// Leave without closing: the test reports the failure.
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Prove(ctx, "", "[a] -> [b]")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller got %v, want context.Canceled", err)
	}
	select {
	case <-released:
		// The refcount drained and the in-flight HTTP request was cancelled:
		// the server saw the disconnect.
	case <-time.After(2 * time.Second):
		t.Fatal("server never saw the disconnect after every waiter left")
	}
}

func TestPipeliningBatchesBursts(t *testing.T) {
	ts, ch := newDaemon(t, router.Options{})
	c := newTestClient(t, ts, WithPipelining(20*time.Millisecond, 64))
	declareChain(t, c, "")
	ch.n.Store(0)

	// 32 goroutines each prove a DISTINCT statement: coalescing can't help,
	// only the pipeliner can — and it must still answer each correctly.
	const callers = 32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Even i: implied span; odd i: refuted reversal.
			stmt := []string{"[a] -> [c]", "[c] -> [a]", "[b] -> [d]", "[d] -> [b]"}[i%4]
			v, err := c.Prove(context.Background(), "", stmt)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			if want := i%2 == 0; v.Implied != want {
				t.Errorf("caller %d: %s implied=%v, want %v", i, stmt, v.Implied, want)
			}
		}(i)
	}
	wg.Wait()
	if n := ch.n.Load(); n >= callers/2 {
		t.Fatalf("server observed %d requests for %d pipelined proves", n, callers)
	}
	st := c.Stats()
	if st.PipelineBatches == 0 || st.PipelineStatements == 0 {
		t.Fatalf("pipeliner idle: %+v", st)
	}
}

func TestPipelinedDeclareThenProve(t *testing.T) {
	ts, _ := newDaemon(t, router.Options{})
	c := newTestClient(t, ts, WithPipelining(5*time.Millisecond, 16))
	ctx := context.Background()
	if err := c.Declare(ctx, "sales", "[x] -> [y]"); err != nil {
		t.Fatal(err)
	}
	// Declare returned, so the mutation is durable and visible: the prove
	// must see it.
	v, err := c.Prove(ctx, "sales", "[x] -> [y]")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Implied {
		t.Fatal("declared OD not implied after pipelined Declare returned")
	}
	if err := c.Remove(ctx, "sales", "[x] -> [y]"); err != nil {
		t.Fatal(err)
	}
	v, err = c.Prove(ctx, "sales", "[x] -> [y]")
	if err != nil {
		t.Fatal(err)
	}
	if v.Implied {
		t.Fatal("removed OD still implied")
	}
}

func TestPipelinedMutationRejectsMalformedLocally(t *testing.T) {
	ts, _ := newDaemon(t, router.Options{})
	c := newTestClient(t, ts, WithPipelining(5*time.Millisecond, 64))
	ctx := context.Background()

	// One caller's malformed statement must fail client-side, before it
	// can poison a shared /ods/batch window with a server-side 400.
	var wg sync.WaitGroup
	var badErr, goodErr error
	wg.Add(2)
	go func() { defer wg.Done(); badErr = c.Declare(ctx, "", "[not a statement") }()
	go func() { defer wg.Done(); goodErr = c.Declare(ctx, "", "[p] -> [q]") }()
	wg.Wait()
	if badErr == nil {
		t.Fatal("malformed declare should fail")
	}
	if goodErr != nil {
		t.Fatalf("valid declare poisoned by a concurrent malformed one: %v", goodErr)
	}
	v, err := c.Prove(ctx, "", "[p] -> [q]")
	if err != nil || !v.Implied {
		t.Fatalf("valid declare did not land: %v %v", v, err)
	}
}

func TestProveBatchReportsEveryStatementError(t *testing.T) {
	// A statement exceeding the attribute guard fails individually inside
	// the batch (unlike a parse error, which 400s the whole request).
	ts, _ := newDaemon(t, router.Options{
		Catalog: []catalog.Option{catalog.WithMaxAttrs(3)},
	})
	c := newTestClient(t, ts)
	declareChain(t, c, "")
	wide1 := "[q1] -> [q2, q3, q4]"
	wide2 := "[r1] -> [r2, r3, r4]"
	out, err := c.ProveBatch(context.Background(), "",
		[]string{"[a] -> [c]", wide1, "[c] -> [a]", wide2})
	if err == nil {
		t.Fatal("statement-level failures must surface in the returned error")
	}
	for _, frag := range []string{"statement 1", "statement 3"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not name %s", err, frag)
		}
	}
	if !out[0].Implied || out[2].Implied {
		t.Fatalf("good slots wrong: %+v", out)
	}
	if out[1].Statement != wide1 || out[1].Generation != 0 {
		t.Fatalf("failed slot should carry its statement and nothing else: %+v", out[1])
	}
}

func TestCacheServesAndInvalidatesByGeneration(t *testing.T) {
	ts, ch := newDaemon(t, router.Options{})
	// maxAge < 0: trust the last observed generation indefinitely — this
	// client is the only mutator, so its own mutations are the only
	// invalidation source it needs.
	c := newTestClient(t, ts, WithCache(128, -1))
	ctx := context.Background()
	declareChain(t, c, "")

	if _, err := c.Prove(ctx, "", "[a] -> [c]"); err != nil {
		t.Fatal(err)
	}
	ch.n.Store(0)
	for i := 0; i < 10; i++ {
		v, err := c.Prove(ctx, "", "[a] -> [c]")
		if err != nil {
			t.Fatal(err)
		}
		if !v.Implied {
			t.Fatal("cached verdict flipped")
		}
	}
	if n := ch.n.Load(); n != 0 {
		t.Fatalf("cache hits reached the wire: %d requests", n)
	}
	if st := c.Stats(); st.CacheHits != 10 {
		t.Fatalf("CacheHits = %d, want 10", st.CacheHits)
	}

	// A mutation through this client advances its generation view: the
	// cached verdict for the old generation must not be served again.
	if err := c.Declare(ctx, "", "[q] -> [r]"); err != nil {
		t.Fatal(err)
	}
	ch.n.Store(0)
	if _, err := c.Prove(ctx, "", "[a] -> [c]"); err != nil {
		t.Fatal(err)
	}
	if n := ch.n.Load(); n == 0 {
		t.Fatal("stale cached verdict served after a generation bump")
	}
}

func TestCacheStalenessBoundPollsGeneration(t *testing.T) {
	ts, ch := newDaemon(t, router.Options{})
	// maxAge 0: every hit revalidates with a GET /generation first.
	c := newTestClient(t, ts, WithCache(128, 0))
	ctx := context.Background()
	declareChain(t, c, "")
	if _, err := c.Prove(ctx, "", "[a] -> [c]"); err != nil {
		t.Fatal(err)
	}

	// Hits are served after a cheap poll, not a re-prove.
	ch.n.Store(0)
	if _, err := c.Prove(ctx, "", "[a] -> [c]"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.CacheHits != 1 || st.GenerationPolls != 1 {
		t.Fatalf("want 1 hit + 1 poll, got %+v", st)
	}

	// A SECOND client mutates behind this one's back. The staleness poll
	// must notice the new generation and force a re-prove.
	c2 := newTestClient(t, ts)
	if err := c2.Declare(ctx, "", "[c] -> [e]"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Prove(ctx, "", "[a] -> [e]")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Implied {
		t.Fatal("extended chain span should be implied after external declare")
	}
	before := c.Stats().CacheHits
	v, err = c.Prove(ctx, "", "[a] -> [c]")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Implied {
		t.Fatal("span lost")
	}
	// The old cached verdict was generation-stale: served fresh, not from
	// cache.
	if c.Stats().CacheHits != before {
		t.Fatal("generation-stale entry was served from cache")
	}
}

func TestRetryOnTransientFailures(t *testing.T) {
	rt, err := router.Open(router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	inner := server.New(rt)
	var fails atomic.Int64
	fails.Store(2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails.Add(-1) >= 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "warming up"})
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithHTTPClient(ts.Client()), WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if err := c.Declare(context.Background(), "", "[a] -> [b]"); err != nil {
		t.Fatalf("declare should survive two 503s: %v", err)
	}
	if st := c.Stats(); st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}

	// 4xx must NOT retry: one request, immediate error.
	before := c.Stats().HTTPRequests
	if _, err := c.Mutate(context.Background(), "Bad Schema!", []string{"[a] -> [b]"}, nil); err == nil {
		t.Fatal("invalid schema should fail")
	}
	if got := c.Stats().HTTPRequests - before; got != 1 {
		t.Fatalf("4xx cost %d requests, want 1 (no retry)", got)
	}
}

func TestProveTimeoutIsNotRetried(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		w.WriteHeader(http.StatusGatewayTimeout)
		json.NewEncoder(w).Encode(map[string]string{"error": "prove timed out"})
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithHTTPClient(ts.Client()), WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	_, err = c.Prove(context.Background(), "", "[a] -> [b]")
	if !IsProveTimeout(err) {
		t.Fatalf("want a prove-timeout error, got %v", err)
	}
	if n.Load() != 1 {
		t.Fatalf("504 was retried: %d requests", n.Load())
	}
}

func TestClosedClient(t *testing.T) {
	ts, _ := newDaemon(t, router.Options{})
	c := newTestClient(t, ts, WithPipelining(time.Hour, 1024)) // never flushes by timer
	ctx := context.Background()

	// A pipelined job pending at Close time is flushed, not stranded.
	done := make(chan error, 1)
	go func() {
		_, err := c.Prove(ctx, "", "[a] -> [a]")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("pending prove not flushed on Close: %v", err)
	}

	if _, err := c.Prove(ctx, "", "[a] -> [b]"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Prove after Close: %v, want ErrClosed", err)
	}
	if err := c.Declare(ctx, "", "[a] -> [b]"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Declare after Close: %v, want ErrClosed", err)
	}
}

func TestHealthzAndGenerations(t *testing.T) {
	ts, _ := newDaemon(t, router.Options{})
	c := newTestClient(t, ts)
	ctx := context.Background()
	if err := c.Declare(ctx, "sales", "[a] -> [b]"); err != nil {
		t.Fatal(err)
	}

	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Generations["sales"] != 1 {
		t.Fatalf("health = %+v", h)
	}
	gens, err := c.Generations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gens["sales"] != 1 {
		t.Fatalf("generations = %v", gens)
	}
}

func TestSchemaShardsStayIsolated(t *testing.T) {
	ts, _ := newDaemon(t, router.Options{})
	c := newTestClient(t, ts, WithCache(64, -1))
	ctx := context.Background()
	if err := c.Declare(ctx, "sales", "[a] -> [b]"); err != nil {
		t.Fatal(err)
	}
	if err := c.Declare(ctx, "inventory", "[b] -> [a]"); err != nil {
		t.Fatal(err)
	}
	v1, err := c.Prove(ctx, "sales", "[a] -> [b]")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Prove(ctx, "inventory", "[a] -> [b]")
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Implied || v2.Implied {
		t.Fatalf("shard isolation broken: sales=%v inventory=%v", v1.Implied, v2.Implied)
	}
	// Same statement, different schemas: distinct cache keys.
	if k1, k2 := fmt.Sprint(v1.Schema), fmt.Sprint(v2.Schema); k1 == k2 {
		t.Fatalf("verdicts report the same shard %q", k1)
	}
}
