package odclient

import (
	"context"
	"fmt"

	"odlib/internal/core"
	"odlib/internal/rewrite"
)

// Reasoner is the odlib.Reasoner-shaped view of one remote shard: the same
// implication surface (Implies, Counterexample, Equivalent, OrderCompatible)
// answered by the daemon instead of a local prover, with every call riding
// the client's cache, coalescing and pipelining. It also implements
// rewrite.Oracle, which is what lets a *rewrite.Constraints — and through it
// every existing rewrite and planner call site — run against a remote
// catalog unchanged.
type Reasoner struct {
	c      *Client
	schema string
}

// Reasoner returns the implication view of the schema's shard. With an
// empty schema the daemon routes per its own rules (default shard, or
// prefix derivation when enabled).
func (c *Client) Reasoner(schema string) *Reasoner {
	return &Reasoner{c: c, schema: schema}
}

// Implies reports whether the shard's declared ODs imply od.
func (r *Reasoner) Implies(ctx context.Context, od core.OD) (bool, error) {
	v, err := r.c.Prove(ctx, r.schema, od.String())
	if err != nil {
		return false, err
	}
	return v.Implied, nil
}

// Counterexample returns a two-row relation refuting od, or nil when od is
// implied — the remote form of odlib.Reasoner.Counterexample.
func (r *Reasoner) Counterexample(ctx context.Context, od core.OD) (*core.Relation, error) {
	v, err := r.c.Prove(ctx, r.schema, od.String())
	if err != nil || v.Implied {
		return nil, err
	}
	if v.Witness == nil {
		return nil, fmt.Errorf("odclient: refutation of %s came without a witness", od)
	}
	return v.Witness.Relation()
}

// Equivalent reports whether the shard implies x ↔ y. The two directions
// travel as one statement, so the daemon answers them against a single
// constraint snapshot.
func (r *Reasoner) Equivalent(ctx context.Context, x, y core.List) (bool, error) {
	return r.proveStmt(ctx, x.String()+" <-> "+y.String())
}

// OrderCompatible reports whether the shard implies x ~ y.
func (r *Reasoner) OrderCompatible(ctx context.Context, x, y core.List) (bool, error) {
	return r.proveStmt(ctx, x.String()+" ~ "+y.String())
}

// OrdersBy implements rewrite.Oracle: does the shard imply x ↦ y?
func (r *Reasoner) OrdersBy(ctx context.Context, x, y core.List) (bool, error) {
	return r.Implies(ctx, core.NewOD(x, y))
}

func (r *Reasoner) proveStmt(ctx context.Context, stmt string) (bool, error) {
	v, err := r.c.Prove(ctx, r.schema, stmt)
	if err != nil {
		return false, err
	}
	return v.Implied, nil
}

// Constraints builds a *rewrite.Constraints over the shard's current
// declared set: the declared ODs are fetched once (for the FD sweep, which
// runs locally — FD implication is cheap closure computation), while the
// exponential OD implication questions are answered remotely through the
// Reasoner oracle. Existing call sites — rewrite.ReduceOrder, the planner —
// accept the result unchanged; they cannot tell the catalog is remote.
//
// The FD set is pinned to the listing's generation; like any Constraints
// value, it describes one constraint state. Rebuild after mutating the
// shard. The oracle side needs no rebuild — its answers are always the
// daemon's current ones, and the verdict cache keeps them generation-fresh.
func (c *Client) Constraints(ctx context.Context, schema string) (*rewrite.Constraints, error) {
	l, err := c.Listing(ctx, schema)
	if err != nil {
		return nil, err
	}
	ods := make([]core.OD, 0, len(l.Declared))
	for _, s := range l.Declared {
		od, err := core.ParseOD(s)
		if err != nil {
			return nil, fmt.Errorf("odclient: listing statement %q: %w", s, err)
		}
		ods = append(ods, od)
	}
	return rewrite.NewConstraints(nil, ods).UseOracle(c.Reasoner(schema)), nil
}

// ReduceOrder reduces an ORDER BY list client-side with ReduceOrder⁺,
// asking the remote catalog only the implication questions the sweep needs
// — the coalesced, cached alternative to the daemon's own /rewrite
// endpoint (which Client.Rewrite exposes) for optimizers that want the
// Steps structure as Go values rather than wire JSON.
func (c *Client) ReduceOrder(ctx context.Context, schema string, order core.List) (rewrite.Result, error) {
	cons, err := c.Constraints(ctx, schema)
	if err != nil {
		return rewrite.Result{}, err
	}
	return rewrite.ReduceOrderCtx(ctx, order, cons)
}
