package odclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"odlib/internal/router"
	"odlib/internal/server"
)

// newFollowerDaemon ships the leader router's full log into a fresh
// follower-mode router and serves it, counting requests.
func newFollowerDaemon(t *testing.T, leader *router.Router, leaderURL string) (*httptest.Server, *countingHandler) {
	t.Helper()
	follower, err := router.Open(router.Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, ss := range leader.SegmentState() {
		if err := follower.NoteLeader(name, ss.AppliedSeq, ss.Generation); err != nil {
			t.Fatal(err)
		}
		for _, info := range ss.Segments {
			b, fresh, err := leader.ReadSegment(name, info.Index, 0, 1<<30)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := follower.FollowerIngest(name, info.Index, 0, b); err != nil {
				t.Fatal(err)
			}
			if fresh.Sealed {
				if err := follower.FollowerSeal(name, info.Index, fresh.Size); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	follower.NotePoll(nil)
	ch := &countingHandler{h: server.New(follower, server.WithLeader(leaderURL))}
	ts := httptest.NewServer(ch)
	t.Cleanup(func() {
		ts.Close()
		follower.Close()
	})
	return ts, ch
}

func TestReplicaReadsRoundRobinAndMutationsGoToLeader(t *testing.T) {
	leaderRT, err := router.Open(router.Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	leaderCount := &countingHandler{h: server.New(leaderRT)}
	lts := httptest.NewServer(leaderCount)
	t.Cleanup(func() {
		lts.Close()
		leaderRT.Close()
	})

	boot := newTestClient(t, lts)
	declareChain(t, boot, "sales")

	f1, c1 := newFollowerDaemon(t, leaderRT, lts.URL)
	f2, c2 := newFollowerDaemon(t, leaderRT, lts.URL)

	c := newTestClient(t, lts, WithReplicas(f1.URL, f2.URL))
	leaderBefore := leaderCount.n.Load()

	// Four distinct proves: reads fan to the replicas, round-robin, and the
	// leader sees none of them.
	for _, stmt := range []string{"[a] -> [c]", "[a] -> [d]", "[b] -> [d]", "[c] -> [a]"} {
		if _, err := c.Prove(context.Background(), "sales", stmt); err != nil {
			t.Fatalf("prove %q: %v", stmt, err)
		}
	}
	if n := leaderCount.n.Load(); n != leaderBefore {
		t.Fatalf("leader served %d read requests, want 0", n-leaderBefore)
	}
	if n1, n2 := c1.n.Load(), c2.n.Load(); n1 != 2 || n2 != 2 {
		t.Fatalf("replica requests split %d/%d, want 2/2 round-robin", n1, n2)
	}
	if s := c.Stats(); s.ReplicaReads != 4 || s.ReplicaFailovers != 0 {
		t.Fatalf("stats = %+v, want 4 replica reads, 0 failovers", s)
	}

	// Listings fan out too; mutations go straight to the leader.
	if _, err := c.Listing(context.Background(), "sales"); err != nil {
		t.Fatal(err)
	}
	if n1, n2 := c1.n.Load(), c2.n.Load(); n1+n2 != 5 {
		t.Fatalf("listing did not hit a replica: %d/%d", n1, n2)
	}
	if err := c.Declare(context.Background(), "sales", "[d] -> [e]"); err != nil {
		t.Fatal(err)
	}
	if n := leaderCount.n.Load(); n != leaderBefore+1 {
		t.Fatalf("mutation did not go to the leader (leader saw %d new requests)", n-leaderBefore)
	}
	if n1, n2 := c1.n.Load(), c2.n.Load(); n1+n2 != 5 {
		t.Fatalf("mutation leaked to a replica: %d/%d", n1, n2)
	}
}

func TestReplicaFailoverOnDeadReplica(t *testing.T) {
	ts, _ := newDaemon(t, router.Options{DataDir: t.TempDir()})
	boot := newTestClient(t, ts)
	declareChain(t, boot, "sales")

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on

	c := newTestClient(t, ts, WithReplicas(dead.URL))
	v, err := c.Prove(context.Background(), "sales", "[a] -> [d]")
	if err != nil {
		t.Fatalf("prove with dead replica: %v", err)
	}
	if !v.Implied {
		t.Fatal("leader failover lost the verdict")
	}
	if s := c.Stats(); s.ReplicaReads != 1 || s.ReplicaFailovers != 1 {
		t.Fatalf("stats = %+v, want 1 replica read, 1 failover", s)
	}
}

func TestReplicaLagBoundHeaderAndLagFailover(t *testing.T) {
	ts, _ := newDaemon(t, router.Options{DataDir: t.TempDir()})
	boot := newTestClient(t, ts)
	declareChain(t, boot, "sales")

	// A "replica" that refuses with the follower's 503 lag answer, recording
	// the client's staleness bound header.
	var gotLag atomic.Value
	laggy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotLag.Store(r.Header.Get("X-OD-Max-Lag-Records"))
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error": "replication: lag 9 exceeds bound", "leader": "` + ts.URL + `"}`))
	}))
	defer laggy.Close()

	c := newTestClient(t, ts, WithReplicas(laggy.URL), WithMaxLagRecords(3))
	v, err := c.Prove(context.Background(), "sales", "[a] -> [d]")
	if err != nil || !v.Implied {
		t.Fatalf("prove via lagging replica = %+v, %v", v, err)
	}
	if got := gotLag.Load(); got != "3" {
		t.Fatalf("replica saw lag bound %v, want \"3\"", got)
	}
	if s := c.Stats(); s.ReplicaFailovers != 1 {
		t.Fatalf("stats = %+v, want 1 failover", s)
	}
}

func TestMisdirectedIsNotRetriedAgainstSameHost(t *testing.T) {
	// A follower that answers every request 421. The client must not burn
	// its retry budget here: one request, one definitive error.
	var hits atomic.Int64
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		w.Write([]byte(`{"error": "follower is read-only", "leader": "http://leader.example:9"}`))
	}))
	defer follower.Close()

	c, err := New(follower.URL, WithHTTPClient(follower.Client()),
		WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	derr := c.Declare(context.Background(), "sales", "[a] -> [b]")
	if derr == nil {
		t.Fatal("declare against a follower succeeded")
	}
	if !IsMisdirected(derr) {
		t.Fatalf("err = %v, want IsMisdirected", derr)
	}
	var ae *APIError
	if !errors.As(derr, &ae) || ae.Leader != "http://leader.example:9" {
		t.Fatalf("err = %v, want APIError carrying the leader URL", derr)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("follower saw %d requests, want exactly 1 (421 is never retried in place)", n)
	}
	if s := c.Stats(); s.Retries != 0 {
		t.Fatalf("client burned %d retries on a 421", s.Retries)
	}
}
