// Package odclient is the optimizer-side client of the odserve constraint
// daemon: the first first-class consumer of the HTTP/JSON surface, built for
// the workload the paper's Section 6 sketches — a query optimizer consulting
// declared order dependencies on every rewrite, in bursts of near-duplicate
// implication questions.
//
// Three mechanisms turn that burst shape into few wire requests:
//
//   - Coalescing: concurrent identical Prove calls collapse into one
//     in-flight request (singleflight per canonical OD key). Waiters are
//     refcounted; when every caller abandons, the underlying request is
//     cancelled, preserving the daemon's disconnect-aborts-search contract.
//   - Pipelining: individual Prove/Declare/Remove calls accumulate for a
//     configurable window or statement budget and flush through
//     /prove/batch and /ods/batch — one round trip, one shard snapshot,
//     one WAL group commit per burst (WithPipelining).
//   - Caching: verdicts are cached under the generation number the server
//     stamps them with, and served only while the shard's generation is
//     unchanged; the client's view of "current" refreshes from every
//     response it sees and, past a staleness bound, from the dedicated
//     GET /generation poll (WithCache). Equal generation is the server's
//     own memo-invalidation rule, observed from outside — a cache hit is
//     exactly as fresh as the daemon's own memo.
//
// Failure handling mirrors the server's cancellation semantics: direct
// calls inherit the caller's context end to end (a cancelled context aborts
// the server-side pattern search), pipelined calls run under the client's
// request timeout because a flushed batch is shared work, transport errors
// and 502/503 retry with exponential backoff (WithRetry), and the daemon's
// 504 prove-timeout answer is surfaced via IsProveTimeout, never retried.
//
// The Reasoner adapter exposes the odlib.Reasoner surface (Implies,
// Counterexample, Equivalent, OrderCompatible) against a remote shard and
// implements rewrite.Oracle, so Client.Constraints can hand existing
// rewrite/planner call sites a *rewrite.Constraints whose implication
// questions travel to the daemon — remote verdicts are differentially
// tested to match local catalog verdicts.
//
// A Client is safe for concurrent use and meant to be shared process-wide:
// sharing is what makes coalescing, pipelining and the cache effective.
// Close flushes the pipeliner; calls after Close fail with ErrClosed.
package odclient
