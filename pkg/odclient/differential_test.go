package odclient

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"odlib/internal/catalog"
	"odlib/internal/core"
	"odlib/internal/rewrite"
	"odlib/internal/router"
)

// randomODs builds a random OD set over a small attribute pool, shaped to
// produce real transitive structure (the same workload shape the catalog's
// own differential harness uses).
func randomODs(rng *rand.Rand, n, pool int) []core.OD {
	attr := func() core.Attribute {
		return core.Attribute(fmt.Sprintf("a%d", rng.Intn(pool)))
	}
	list := func() core.List {
		l := make(core.List, 1+rng.Intn(3))
		for i := range l {
			l[i] = attr()
		}
		return l
	}
	out := make([]core.OD, n)
	for i := range out {
		out[i] = core.OD{LHS: list(), RHS: list()}
	}
	return out
}

// expandWitness widens a discriminating-attribute witness relation onto the
// union of attributes the declared set and the question mention; attributes
// the projection dropped are constant (both rows tie), which is exactly the
// information the projection removed.
func expandWitness(t *testing.T, projected *core.Relation, declared []core.OD, phi core.OD) *core.Relation {
	t.Helper()
	seen := map[core.Attribute]bool{}
	var universe core.List
	add := func(l core.List) {
		for _, a := range l {
			if !seen[a] {
				seen[a] = true
				universe = append(universe, a)
			}
		}
	}
	for _, od := range declared {
		add(od.LHS)
		add(od.RHS)
	}
	add(phi.LHS)
	add(phi.RHS)
	rel, err := core.NewRelation(universe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < projected.Len(); i++ {
		row := make([]int64, len(universe))
		for j, a := range universe {
			if projected.HasAttr(a) {
				v, err := projected.Value(i, a)
				if err != nil {
					t.Fatal(err)
				}
				row[j] = v.Int
			}
		}
		if err := rel.AddIntRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// TestRemoteVerdictsMatchLocalCatalog is the adapter's differential
// harness: for random constraint sets, every implication verdict obtained
// through the remote Reasoner — and every ORDER BY reduction obtained
// through the remote Constraints adapter — must be identical to what a
// local catalog over the same declared set answers. The client runs with
// every mechanism on (coalescing, pipelining, cache), so the equivalence
// holds through the full stack, not just the plain wire path.
func TestRemoteVerdictsMatchLocalCatalog(t *testing.T) {
	ts, _ := newDaemon(t, router.Options{})
	c := newTestClient(t, ts,
		WithPipelining(time.Millisecond, 32),
		WithCache(1024, -1))
	ctx := context.Background()

	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		schema := fmt.Sprintf("s%d", seed)
		declared := randomODs(rng, 3+rng.Intn(5), 5)

		local := catalog.New()
		local.Add(declared...)
		stmts := make([]string, len(declared))
		for i, od := range declared {
			stmts[i] = od.String()
		}
		if err := c.Declare(ctx, schema, stmts...); err != nil {
			t.Fatalf("seed %d: declare: %v", seed, err)
		}

		remote := c.Reasoner(schema)
		for q := 0; q < 12; q++ {
			phi := randomODs(rng, 1, 5)[0]
			want, err := local.Implies(phi)
			if err != nil {
				t.Fatalf("seed %d: local: %v", seed, err)
			}
			got, err := remote.Implies(ctx, phi)
			if err != nil {
				t.Fatalf("seed %d: remote: %v", seed, err)
			}
			if got != want {
				t.Fatalf("seed %d: %s: remote=%v local=%v under %s",
					seed, phi, got, want, core.ODsString(declared))
			}
			if !want {
				// The remote witness must genuinely refute: satisfy every
				// declared OD, falsify the question. The server projects
				// witnesses onto discriminating attributes, so expand back
				// over the full universe first — omitted attributes tie.
				projected, err := remote.Counterexample(ctx, phi)
				if err != nil {
					t.Fatalf("seed %d: counterexample: %v", seed, err)
				}
				rel := expandWitness(t, projected, declared, phi)
				for _, od := range declared {
					ok, _, err := rel.Satisfies(od)
					if err != nil {
						t.Fatalf("seed %d: witness check: %v", seed, err)
					}
					if !ok {
						t.Fatalf("seed %d: witness violates declared %s", seed, od)
					}
				}
				ok, _, err := rel.Satisfies(phi)
				if err != nil {
					t.Fatalf("seed %d: witness check: %v", seed, err)
				}
				if ok {
					t.Fatalf("seed %d: witness fails to falsify %s", seed, phi)
				}
			}
		}

		// ORDER BY reductions: the remote Constraints adapter must reduce
		// exactly like the local catalog's own constraints.
		cons, err := c.Constraints(ctx, schema)
		if err != nil {
			t.Fatalf("seed %d: constraints: %v", seed, err)
		}
		localCons := rewrite.NewConstraints(nil, local.Declared())
		for q := 0; q < 4; q++ {
			order := make(core.List, 2+rng.Intn(3))
			for i := range order {
				order[i] = core.Attribute(fmt.Sprintf("a%d", rng.Intn(5)))
			}
			wantRes, err := rewrite.ReduceOrder(order, localCons)
			if err != nil {
				t.Fatalf("seed %d: local reduce: %v", seed, err)
			}
			gotRes, err := rewrite.ReduceOrderCtx(ctx, order, cons)
			if err != nil {
				t.Fatalf("seed %d: remote reduce: %v", seed, err)
			}
			if !gotRes.Reduced.Equal(wantRes.Reduced) {
				t.Fatalf("seed %d: reduce %v: remote %v != local %v",
					seed, order, gotRes.Reduced, wantRes.Reduced)
			}
			// And the daemon-side /rewrite endpoint agrees with both.
			wire, err := c.Rewrite(ctx, schema, order.String())
			if err != nil {
				t.Fatalf("seed %d: wire rewrite: %v", seed, err)
			}
			if wire.Reduced != wantRes.Reduced.String() {
				t.Fatalf("seed %d: /rewrite %v: %s != %s",
					seed, order, wire.Reduced, wantRes.Reduced)
			}
		}
	}
}
